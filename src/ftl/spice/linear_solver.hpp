#pragma once
// Assemble -> factor -> solve pipeline for one Newton iteration, owning the
// reused assembly buffers and factorization workspaces. A Circuit carries
// one of these across Newton iterations, sweep points, and transient steps,
// so the sparsity pattern is computed once per circuit and the sparse LU
// reuses its symbolic analysis whenever the pattern holds still.

#include <cstdint>

#include "ftl/linalg/lu.hpp"
#include "ftl/linalg/sparse_lu.hpp"
#include "ftl/spice/mna.hpp"

namespace ftl::spice {

class Circuit;

/// Process-wide Newton/LU pipeline counters (relaxed atomics, monotonic),
/// surfaced by the serve `stats` op as `spice_core` so production circuit
/// load is observable. They cover the classic per-circuit MnaLinearSolver
/// path; the batched corner engine reports separately as `batch_core`
/// (spice/batch.hpp).
struct SpiceCounters {
  std::uint64_t newton_iterations = 0;  ///< solve_iteration calls, all analyses
  std::uint64_t factors = 0;            ///< full sparse factorizations
  std::uint64_t refactors = 0;          ///< accepted numeric-only replays
  std::uint64_t dense_fallbacks = 0;    ///< sparse pivoting gave out mid-solve
  std::uint64_t dense_solves = 0;       ///< iterations served by the dense LU
};

/// Snapshot of the process-wide counters.
SpiceCounters spice_counters();

/// Resets all counters to zero (test support).
void reset_spice_counters();

/// Which matrix backend newton_solve uses. kAuto picks dense for small
/// systems (below MnaLinearSolver::kDenseCutover unknowns) and sparse above;
/// the explicit modes exist for differential testing and benchmarks.
enum class MatrixMode { kAuto, kDense, kSparse };

class MnaLinearSolver {
 public:
  /// Unknown count at which kAuto switches from dense LU to sparse LU. A
  /// lattice MNA matrix is >95% zeros by 3x3 (n ~ 35), where Gilbert-
  /// Peierls already wins; below this the dense kernel's locality does.
  static constexpr int kDenseCutover = 24;

  /// Readies the pipeline for an n-unknown system under `mode`; drops
  /// cached state when n or the effective backend changed.
  void prepare(int n, MatrixMode mode);

  /// Structure changed (devices added): drop the cached pattern/factors.
  void invalidate();

  /// One Newton iteration: zeroes the buffers, stamps every device of
  /// `circuit` at `ctx`, factors (reusing symbolic analysis when possible),
  /// and solves into `x`. Throws ftl::Error on a singular system. A sparse
  /// factorization failure falls back to dense once before giving up, so
  /// near-singular systems degrade instead of dying.
  void solve_iteration(const Circuit& circuit, const EvalContext& ctx,
                       linalg::Vector& x);

  bool using_sparse() const { return sparse_active_; }

 private:
  int n_ = -1;
  MatrixMode mode_ = MatrixMode::kAuto;
  bool sparse_active_ = false;

  DenseAssembly dense_;
  linalg::LuFactorization dense_lu_;

  SparseAssembly sparse_;
  linalg::SparseLu sparse_lu_;
  bool have_symbolic_ = false;
};

}  // namespace ftl::spice
