#pragma once
// Level-1 NMOS device for the circuit simulator — the model the paper fits
// to the TCAD data (§IV). The bulk terminal is accepted for netlist
// compatibility but, as in the paper's usage, it is always grounded and the
// body effect is not modelled (the fitted Vth already absorbs it).

#include "ftl/fit/mosfet_level1.hpp"
#include "ftl/spice/circuit.hpp"

namespace ftl::spice {

class Mosfet : public Device {
 public:
  Mosfet(std::string name, int drain, int gate, int source, int bulk,
         fit::Level1Params params);

  void stamp(Stamper& stamper, const EvalContext& ctx) const override;
  bool is_nonlinear() const override { return true; }
  DeviceView view() const override;

  const fit::Level1Params& params() const { return params_; }

  /// Replaces the model parameters in place. The corner/variability batch
  /// engine mutates one shared circuit per lane instead of rebuilding the
  /// netlist per trial; the MNA stamp positions do not depend on the
  /// parameter values, so the cached sparsity pattern stays valid.
  void set_params(const fit::Level1Params& params);

  /// Drain current at a given solution (positive into the drain).
  double drain_current(const linalg::Vector& solution) const;

 private:
  int drain_;
  int gate_;
  int source_;
  int bulk_;  // accepted, unused (grounded-body model)
  fit::Level1Params params_;
};

}  // namespace ftl::spice
