#pragma once
// Newton–Raphson DC operating point with the two classic SPICE rescue
// ladders: gmin stepping and source stepping.

#include "ftl/spice/circuit.hpp"
#include "ftl/spice/linear_solver.hpp"

namespace ftl::spice {

struct NewtonOptions {
  int max_iterations = 200;
  double abstol = 1e-6;      ///< node-voltage absolute tolerance, V
  double reltol = 1e-3;
  double max_step = 2.0;     ///< Newton voltage-step clamp, V
  double gmin = 1e-12;
  /// Linear-system backend; kAuto sizes the choice per circuit. kDense and
  /// kSparse force a backend for differential testing.
  MatrixMode matrix_mode = MatrixMode::kAuto;
};

struct OpResult {
  linalg::Vector solution;  ///< node voltages then branch currents
  bool converged = false;
  int iterations = 0;       ///< Newton iterations of the final ladder rung
  double gmin_used = 0.0;   ///< final gmin (diagnostic)
};

/// Computes the DC operating point. Tries plain Newton, then gmin stepping,
/// then source stepping. Throws ftl::Error on a singular system.
OpResult dc_operating_point(Circuit& circuit, const NewtonOptions& options = {});

/// One Newton solve at fixed context knobs; used by the steppers, the DC
/// sweep and the transient engine. `initial` seeds the iteration (may be
/// empty). `ctx_template` supplies time/integrator/source-scale knobs; the
/// solver pointer inside it is managed here.
OpResult newton_solve(Circuit& circuit, const linalg::Vector& initial,
                      EvalContext ctx_template, const NewtonOptions& options);

}  // namespace ftl::spice
