#pragma once
// Newton–Raphson DC operating point with the two classic SPICE rescue
// ladders: gmin stepping and source stepping.

#include <algorithm>
#include <string>

#include "ftl/spice/circuit.hpp"
#include "ftl/spice/linear_solver.hpp"
#include "ftl/util/error.hpp"

namespace ftl::spice {

struct NewtonOptions {
  int max_iterations = 200;
  double abstol = 1e-6;      ///< node-voltage absolute tolerance, V
  double reltol = 1e-3;
  double max_step = 2.0;     ///< Newton voltage-step clamp, V
  double gmin = 1e-12;
  /// Linear-system backend; kAuto sizes the choice per circuit. kDense and
  /// kSparse force a backend for differential testing.
  MatrixMode matrix_mode = MatrixMode::kAuto;
};

struct OpResult {
  linalg::Vector solution;  ///< node voltages then branch currents
  bool converged = false;
  int iterations = 0;       ///< Newton iterations of the final ladder rung
  double gmin_used = 0.0;   ///< final gmin (diagnostic)
};

/// Computes the DC operating point. Tries plain Newton, then gmin stepping,
/// then source stepping. Throws ftl::Error on a singular system.
OpResult dc_operating_point(Circuit& circuit, const NewtonOptions& options = {});

/// One Newton solve at fixed context knobs; used by the steppers, the DC
/// sweep and the transient engine. `initial` seeds the iteration (may be
/// empty). `ctx_template` supplies time/integrator/source-scale knobs; the
/// solver pointer inside it is managed here.
OpResult newton_solve(Circuit& circuit, const linalg::Vector& initial,
                      EvalContext ctx_template, const NewtonOptions& options);

namespace detail {

/// The classic rescue ladders (gmin stepping, then source stepping from the
/// ladder's best solution), shared verbatim by dc_operating_point and the
/// batched corner driver (spice/batch.hpp) so both rescue identically.
/// `run(initial, step_ctx)` performs one Newton solve and returns its
/// OpResult; `ctx` is the target context (true gmin, full sources). Called
/// after a plain Newton attempt failed; throws ftl::Error when both ladders
/// stall.
template <class RunFn>
OpResult dcop_rescue(const EvalContext& ctx, const NewtonOptions& options,
                     RunFn&& run) {
  // gmin stepping: solve an easier (leakier) circuit, then tighten.
  linalg::Vector guess;
  bool have_guess = false;
  for (double gmin = 1e-2; gmin >= options.gmin; gmin /= 10.0) {
    EvalContext step_ctx = ctx;
    step_ctx.gmin = gmin;
    OpResult r = run(have_guess ? guess : linalg::Vector{}, step_ctx);
    if (!r.converged) break;
    guess = r.solution;
    have_guess = true;
    if (gmin <= options.gmin * 10.0) {
      EvalContext final_ctx = ctx;
      OpResult final_result = run(guess, final_ctx);
      if (final_result.converged) return final_result;
      break;
    }
  }

  // Source stepping from whatever the gmin ladder produced, with an
  // adaptive step: a failed rung halves the increment and retries from the
  // last good solution.
  double scale = 0.0;
  double step = 0.1;
  while (scale < 1.0) {
    const double attempt_scale = std::min(scale + step, 1.0);
    EvalContext step_ctx = ctx;
    step_ctx.source_scale = attempt_scale;
    OpResult r = run(have_guess ? guess : linalg::Vector{}, step_ctx);
    if (r.converged) {
      scale = attempt_scale;
      guess = r.solution;
      have_guess = true;
      step = std::min(step * 2.0, 0.25);
      if (scale >= 1.0) return r;
    } else {
      step /= 2.0;
      if (step < 1e-4) {
        throw ftl::Error(
            "DC operating point: source stepping stalled at scale " +
            std::to_string(scale));
      }
    }
  }
  throw ftl::Error("DC operating point: convergence failed");
}

}  // namespace detail

}  // namespace ftl::spice
