#pragma once
// Circuit model: named nodes, devices, and the MNA sizing bookkeeping.
// Devices are polymorphic; the analyses in dcop/dcsweep/transient only see
// the Device interface.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ftl/spice/mna.hpp"

namespace ftl::spice {

/// Structural self-description of a device, consumed by the ftl::check
/// static passes. `nodes` lists every node the device touches (ground
/// included); `dc_couples` the node pairs between which the device presents
/// a finite DC conductance (a resistor's ends, a MOSFET's channel, a
/// voltage source's enforced branch); `gate_couples` the asymmetric MNA
/// pattern entries a control terminal contributes (row, col), e.g. the
/// transconductance columns of a MOSFET gate. `value` is the headline
/// parameter in SI units (ohms, farads, DC volts/amps); `width`/`length`
/// the MOSFET geometry (0 otherwise).
struct DeviceView {
  enum class Kind {
    kOther,
    kResistor,
    kCapacitor,
    kVoltageSource,
    kCurrentSource,
    kMosfet,
  };

  Kind kind = Kind::kOther;
  std::vector<int> nodes;
  std::vector<std::pair<int, int>> dc_couples;
  std::vector<std::pair<int, int>> gate_couples;
  double value = 0.0;
  double width = 0.0;
  double length = 0.0;
};

/// Base class for all circuit elements.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Number of extra MNA unknowns (branch currents) this device adds.
  virtual int branch_count() const { return 0; }

  /// First branch-unknown index, assigned by the circuit before analysis.
  void set_branch_offset(int offset) { branch_offset_ = offset; }
  int branch_offset() const { return branch_offset_; }

  /// Writes the (linearized) companion model at the context's iterate.
  virtual void stamp(Stamper& stamper, const EvalContext& ctx) const = 0;

  /// True when the device needs Newton iteration.
  virtual bool is_nonlinear() const { return false; }

  /// Latches reactive state after an accepted transient step.
  virtual void commit_step(const linalg::Vector& /*solution*/,
                           const EvalContext& /*ctx*/) {}

  /// Seeds reactive state from the DC operating point before a transient.
  virtual void initialize_state(const linalg::Vector& /*dc_solution*/) {}

  /// Appends the device's waveform breakpoints in (0, tstop) for the
  /// transient scheduler (sources override this).
  virtual void add_breakpoints(double /*tstop*/,
                               std::vector<double>& /*out*/) const {}

  /// Structural description for the static-analysis passes. The default is
  /// an opaque view (kOther, no nodes): such a device is invisible to the
  /// topology checks, which keeps unknown device types from producing false
  /// positives. Every in-tree device overrides this.
  virtual DeviceView view() const { return {}; }

 private:
  std::string name_;
  int branch_offset_ = -1;
};

class MnaLinearSolver;

/// A flat circuit: nodes, devices, ground conventions ("0" and "gnd").
class Circuit {
 public:
  static constexpr int kGround = -1;

  Circuit();
  ~Circuit();
  Circuit(Circuit&&) noexcept;
  Circuit& operator=(Circuit&&) noexcept;

  /// Returns the index for a node name, creating it on first use.
  /// "0" and "gnd" (case-insensitive) map to kGround.
  int node(const std::string& name);

  /// Looks up an existing node; throws ftl::Error when unknown.
  int find_node(const std::string& name) const;

  /// Name of a node index (for reporting).
  const std::string& node_name(int index) const;

  int node_count() const { return static_cast<int>(node_names_.size()); }

  /// Adds a device; returns a reference valid for the circuit's lifetime.
  Device& add(std::unique_ptr<Device> device);

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  /// Finds a device by name; throws ftl::Error when absent.
  Device& device(const std::string& name) const;

  bool has_device(const std::string& name) const;

  /// Total unknown count (nodes + branches); assigns branch offsets.
  int prepare_unknowns();

  /// True when some device needs Newton iteration.
  bool has_nonlinear_devices() const;

  /// Per-circuit assemble/factor/solve pipeline. Lives with the circuit so
  /// the MNA sparsity pattern and symbolic factorization are computed once
  /// and reused across Newton iterations, sweep points, and transient
  /// steps; add() invalidates it.
  MnaLinearSolver& linear_solver();

  /// Pre-solve gate. The hook runs once per circuit topology (add()
  /// re-arms it) right before the first Newton solve of every analysis;
  /// throwing from it aborts the solve. ftl::check installs its static
  /// diagnostics here (check::install_presolve_gate); an empty hook
  /// disables the gate.
  using PresolveHook = std::function<void(const Circuit&)>;
  void set_presolve_hook(PresolveHook hook);

  /// Runs the installed hook if the topology has not been vetted yet.
  /// Called by dcop/dcsweep/transient; cheap no-op when already vetted.
  void run_presolve_gate();

 private:
  std::unordered_map<std::string, int> node_index_;
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<MnaLinearSolver> linear_solver_;
  PresolveHook presolve_hook_;
  bool presolve_checked_ = false;
};

}  // namespace ftl::spice
