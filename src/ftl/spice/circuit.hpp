#pragma once
// Circuit model: named nodes, devices, and the MNA sizing bookkeeping.
// Devices are polymorphic; the analyses in dcop/dcsweep/transient only see
// the Device interface.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ftl/spice/mna.hpp"

namespace ftl::spice {

/// Base class for all circuit elements.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Number of extra MNA unknowns (branch currents) this device adds.
  virtual int branch_count() const { return 0; }

  /// First branch-unknown index, assigned by the circuit before analysis.
  void set_branch_offset(int offset) { branch_offset_ = offset; }
  int branch_offset() const { return branch_offset_; }

  /// Writes the (linearized) companion model at the context's iterate.
  virtual void stamp(Stamper& stamper, const EvalContext& ctx) const = 0;

  /// True when the device needs Newton iteration.
  virtual bool is_nonlinear() const { return false; }

  /// Latches reactive state after an accepted transient step.
  virtual void commit_step(const linalg::Vector& /*solution*/,
                           const EvalContext& /*ctx*/) {}

  /// Seeds reactive state from the DC operating point before a transient.
  virtual void initialize_state(const linalg::Vector& /*dc_solution*/) {}

  /// Appends the device's waveform breakpoints in (0, tstop) for the
  /// transient scheduler (sources override this).
  virtual void add_breakpoints(double /*tstop*/,
                               std::vector<double>& /*out*/) const {}

 private:
  std::string name_;
  int branch_offset_ = -1;
};

class MnaLinearSolver;

/// A flat circuit: nodes, devices, ground conventions ("0" and "gnd").
class Circuit {
 public:
  static constexpr int kGround = -1;

  Circuit();
  ~Circuit();
  Circuit(Circuit&&) noexcept;
  Circuit& operator=(Circuit&&) noexcept;

  /// Returns the index for a node name, creating it on first use.
  /// "0" and "gnd" (case-insensitive) map to kGround.
  int node(const std::string& name);

  /// Looks up an existing node; throws ftl::Error when unknown.
  int find_node(const std::string& name) const;

  /// Name of a node index (for reporting).
  const std::string& node_name(int index) const;

  int node_count() const { return static_cast<int>(node_names_.size()); }

  /// Adds a device; returns a reference valid for the circuit's lifetime.
  Device& add(std::unique_ptr<Device> device);

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  /// Finds a device by name; throws ftl::Error when absent.
  Device& device(const std::string& name) const;

  bool has_device(const std::string& name) const;

  /// Total unknown count (nodes + branches); assigns branch offsets.
  int prepare_unknowns();

  /// True when some device needs Newton iteration.
  bool has_nonlinear_devices() const;

  /// Per-circuit assemble/factor/solve pipeline. Lives with the circuit so
  /// the MNA sparsity pattern and symbolic factorization are computed once
  /// and reused across Newton iterations, sweep points, and transient
  /// steps; add() invalidates it.
  MnaLinearSolver& linear_solver();

 private:
  std::unordered_map<std::string, int> node_index_;
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<MnaLinearSolver> linear_solver_;
};

}  // namespace ftl::spice
