#include "ftl/spice/batch.hpp"

#include <atomic>
#include <cmath>
#include <utility>

#include "ftl/linalg/lu.hpp"
#include "ftl/spice/circuit.hpp"
#include "ftl/util/error.hpp"

namespace ftl::spice {
namespace {

// Process-wide counters (relaxed: individually exact, mutually unordered),
// flushed once per solve() call.
struct AtomicBatchCounters {
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> lanes{0};
  std::atomic<std::uint64_t> symbolic_factors{0};
  std::atomic<std::uint64_t> symbolic_reuses{0};
  std::atomic<std::uint64_t> numeric_refactors{0};
  std::atomic<std::uint64_t> lane_fallbacks{0};
  std::atomic<std::uint64_t> newton_iterations{0};
};

AtomicBatchCounters& batch_counter_cells() {
  static AtomicBatchCounters counters;
  return counters;
}

// Same typed-stamper assembly loop as MnaLinearSolver's: the Stamper
// constructor chosen here decides whether every stamp goes through a
// virtual call or an inlined write.
template <class Assembly>
void assemble(const Circuit& circuit, const EvalContext& ctx,
              Assembly& assembly) {
  Stamper stamper(assembly);
  for (const auto& dev : circuit.devices()) dev->stamp(stamper, ctx);
}

}  // namespace

BatchCounters batch_counters() {
  AtomicBatchCounters& c = batch_counter_cells();
  BatchCounters out;
  out.batches = c.batches.load(std::memory_order_relaxed);
  out.lanes = c.lanes.load(std::memory_order_relaxed);
  out.symbolic_factors = c.symbolic_factors.load(std::memory_order_relaxed);
  out.symbolic_reuses = c.symbolic_reuses.load(std::memory_order_relaxed);
  out.numeric_refactors = c.numeric_refactors.load(std::memory_order_relaxed);
  out.lane_fallbacks = c.lane_fallbacks.load(std::memory_order_relaxed);
  out.newton_iterations = c.newton_iterations.load(std::memory_order_relaxed);
  return out;
}

void reset_batch_counters() {
  AtomicBatchCounters& c = batch_counter_cells();
  c.batches.store(0, std::memory_order_relaxed);
  c.lanes.store(0, std::memory_order_relaxed);
  c.symbolic_factors.store(0, std::memory_order_relaxed);
  c.symbolic_reuses.store(0, std::memory_order_relaxed);
  c.numeric_refactors.store(0, std::memory_order_relaxed);
  c.lane_fallbacks.store(0, std::memory_order_relaxed);
  c.newton_iterations.store(0, std::memory_order_relaxed);
}

BatchSolver::BatchSolver(Circuit& circuit, std::size_t lanes)
    : circuit_(&circuit), lanes_(lanes) {
  FTL_EXPECTS(lanes > 0);
}

// One batched Newton iteration for `lane` — MnaLinearSolver::solve_iteration
// with the per-circuit SparseLu swapped for the lane-blocked batch LU. The
// control flow (pattern-change invalidation, dense rescue when sparse
// pivoting gives out) mirrors that function so a lane's solve sequence is
// indistinguishable from a standalone circuit's.
void BatchSolver::solve_lane_iteration(std::size_t lane,
                                       const EvalContext& ctx,
                                       linalg::Vector& x) {
  const std::size_t n = static_cast<std::size_t>(n_);
  if (sparse_active_) {
    sparse_.reset(n);
    assemble(*circuit_, ctx, sparse_);
    const bool pattern_changed = sparse_.finalize();
    if (pattern_changed) lu_.invalidate();

    const linalg::CsrView a = sparse_.matrix();
    bool factored = false;
    try {
      lu_.factor_lane(lane, a);
      factored = true;
    } catch (const ftl::Error&) {
      // fall through to the dense rescue below
    }
    if (factored) {
      lu_.solve_lane(lane, sparse_.rhs(), x);
      return;
    }
    // Sparse pivoting gave out (near-singular system). Re-assemble densely
    // once — the dense kernel's full pivot search is the last word; if it
    // also reports singular, the ftl::Error propagates to the caller.
    dense_.reset(n);
    assemble(*circuit_, ctx, dense_);
    dense_lu_.refactor(dense_.matrix());
    dense_lu_.solve(dense_.rhs(), x);
    return;
  }

  dense_.reset(n);
  assemble(*circuit_, ctx, dense_);
  dense_lu_.refactor(dense_.matrix());
  dense_lu_.solve(dense_.rhs(), x);
}

// newton_solve with the batch engine underneath: the clamp/tolerance update,
// convergence rules, and error wrapping are copied verbatim so a lane's
// iterate sequence matches the standalone solver bit for bit.
OpResult BatchSolver::run_lane(std::size_t lane, const linalg::Vector& initial,
                               EvalContext ctx, const NewtonOptions& options) {
  const int n = n_;
  OpResult result;
  result.solution = initial.size() == static_cast<std::size_t>(n)
                        ? initial
                        : linalg::Vector(static_cast<std::size_t>(n), 0.0);
  result.gmin_used = ctx.gmin;

  const int node_count = node_count_;
  const bool nonlinear = nonlinear_;
  const bool clamp_steps = nonlinear;

  linalg::Vector next;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    ++newton_iterations_;
    ctx.solution = &result.solution;
    try {
      solve_lane_iteration(lane, ctx, next);
    } catch (const ftl::Error& e) {
      throw ftl::Error(std::string("DC solve failed (") + e.what() +
                       "); check for floating nodes");
    }

    bool converged = true;
    for (int i = 0; i < n; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      double delta = next[ui] - result.solution[ui];
      if (clamp_steps && i < node_count) {
        delta = std::clamp(delta, -options.max_step, options.max_step);
      }
      const double updated = result.solution[ui] + delta;
      const double tol =
          options.abstol + options.reltol * std::max(std::fabs(updated),
                                                     std::fabs(result.solution[ui]));
      if (std::fabs(delta) > tol) converged = false;
      result.solution[ui] = updated;
    }
    if (converged && (iter > 0 || !nonlinear)) {
      result.converged = true;
      return result;
    }
    if (!nonlinear && iter == 0) {
      result.converged = true;
      result.iterations = 1;
      return result;
    }
  }
  return result;
}

std::vector<BatchCornerResult> BatchSolver::solve(
    const std::function<void(std::size_t)>& apply,
    const BatchOptions& options) {
  std::vector<BatchCornerResult> out(lanes_);

  // One gate for the whole batch: the corners share a topology, so the
  // static checks render one verdict. A rejection fails every lane exactly
  // as it would have aborted every standalone solve.
  try {
    circuit_->run_presolve_gate();
  } catch (const ftl::Error& e) {
    for (auto& r : out) {
      r.failed = true;
      r.error = e.what();
    }
    return out;
  }

  n_ = circuit_->prepare_unknowns();
  node_count_ = circuit_->node_count();
  nonlinear_ = circuit_->has_nonlinear_devices();
  sparse_active_ = options.newton.matrix_mode == MatrixMode::kSparse ||
                   (options.newton.matrix_mode == MatrixMode::kAuto &&
                    n_ >= MnaLinearSolver::kDenseCutover);
  lu_.reset(lanes_);
  sparse_.reset(0);  // drop any pattern cached from a previous solve()
  newton_iterations_ = 0;

  linalg::Vector warm;
  bool have_warm = false;
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    apply(lane);
    BatchCornerResult& r = out[lane];
    EvalContext ctx;
    ctx.is_transient = false;
    ctx.gmin = options.newton.gmin;
    try {
      // Plain Newton first, then the same rescue ladders as
      // dc_operating_point — run through this lane's batched factors.
      OpResult direct = run_lane(
          lane, options.warm_start && have_warm ? warm : linalg::Vector{}, ctx,
          options.newton);
      if (direct.converged) {
        r.op = std::move(direct);
      } else {
        r.op = detail::dcop_rescue(
            ctx, options.newton,
            [&](const linalg::Vector& initial, const EvalContext& step_ctx) {
              return run_lane(lane, initial, step_ctx, options.newton);
            });
      }
      if (options.warm_start) {
        warm = r.op.solution;
        have_warm = true;
      }
    } catch (const ftl::Error& e) {
      r.failed = true;
      r.error = e.what();
    }
  }

  AtomicBatchCounters& c = batch_counter_cells();
  const linalg::SparseLuBatchCounters& lu = lu_.counters();
  c.batches.fetch_add(1, std::memory_order_relaxed);
  c.lanes.fetch_add(lanes_, std::memory_order_relaxed);
  c.symbolic_factors.fetch_add(lu.symbolic_factors, std::memory_order_relaxed);
  c.symbolic_reuses.fetch_add(lu.symbolic_reuses, std::memory_order_relaxed);
  c.numeric_refactors.fetch_add(lu.numeric_refactors,
                                std::memory_order_relaxed);
  c.lane_fallbacks.fetch_add(lu.lane_fallbacks, std::memory_order_relaxed);
  c.newton_iterations.fetch_add(newton_iterations_, std::memory_order_relaxed);
  return out;
}

std::vector<BatchCornerResult> dcop_batch(
    Circuit& circuit, std::size_t lanes,
    const std::function<void(std::size_t)>& apply,
    const BatchOptions& options) {
  BatchSolver solver(circuit, lanes);
  return solver.solve(apply, options);
}

}  // namespace ftl::spice
