#pragma once
// Passive two-terminal devices: resistor and capacitor. The capacitor
// carries its companion-model state (previous voltage and current) for the
// backward-Euler / trapezoidal integrators.

#include "ftl/spice/circuit.hpp"

namespace ftl::spice {

class Resistor : public Device {
 public:
  Resistor(std::string name, int a, int b, double resistance);

  void stamp(Stamper& stamper, const EvalContext& ctx) const override;
  DeviceView view() const override;

  double resistance() const { return resistance_; }
  double current(const linalg::Vector& solution) const;

 private:
  int a_;
  int b_;
  double resistance_;
};

class Capacitor : public Device {
 public:
  Capacitor(std::string name, int a, int b, double capacitance);

  void stamp(Stamper& stamper, const EvalContext& ctx) const override;
  void commit_step(const linalg::Vector& solution,
                   const EvalContext& ctx) override;
  void initialize_state(const linalg::Vector& dc_solution) override;
  DeviceView view() const override;

  double capacitance() const { return capacitance_; }

 private:
  double branch_voltage(const linalg::Vector& solution) const;

  int a_;
  int b_;
  double capacitance_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

}  // namespace ftl::spice
