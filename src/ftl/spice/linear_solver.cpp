#include "ftl/spice/linear_solver.hpp"

#include <atomic>

#include "ftl/spice/circuit.hpp"
#include "ftl/util/error.hpp"

namespace ftl::spice {
namespace {

// Process-wide counters (relaxed: individually exact, mutually unordered).
// A Newton iteration assembles and factors a whole matrix, so a handful of
// relaxed increments per iteration is noise — no per-solve flush needed.
struct AtomicSpiceCounters {
  std::atomic<std::uint64_t> newton_iterations{0};
  std::atomic<std::uint64_t> factors{0};
  std::atomic<std::uint64_t> refactors{0};
  std::atomic<std::uint64_t> dense_fallbacks{0};
  std::atomic<std::uint64_t> dense_solves{0};
};

AtomicSpiceCounters& spice_counter_cells() {
  static AtomicSpiceCounters counters;
  return counters;
}

}  // namespace

SpiceCounters spice_counters() {
  AtomicSpiceCounters& c = spice_counter_cells();
  SpiceCounters out;
  out.newton_iterations = c.newton_iterations.load(std::memory_order_relaxed);
  out.factors = c.factors.load(std::memory_order_relaxed);
  out.refactors = c.refactors.load(std::memory_order_relaxed);
  out.dense_fallbacks = c.dense_fallbacks.load(std::memory_order_relaxed);
  out.dense_solves = c.dense_solves.load(std::memory_order_relaxed);
  return out;
}

void reset_spice_counters() {
  AtomicSpiceCounters& c = spice_counter_cells();
  c.newton_iterations.store(0, std::memory_order_relaxed);
  c.factors.store(0, std::memory_order_relaxed);
  c.refactors.store(0, std::memory_order_relaxed);
  c.dense_fallbacks.store(0, std::memory_order_relaxed);
  c.dense_solves.store(0, std::memory_order_relaxed);
}

void MnaLinearSolver::prepare(int n, MatrixMode mode) {
  const bool want_sparse =
      mode == MatrixMode::kSparse ||
      (mode == MatrixMode::kAuto && n >= kDenseCutover);
  if (n != n_ || want_sparse != sparse_active_) {
    n_ = n;
    sparse_active_ = want_sparse;
    have_symbolic_ = false;
    sparse_.reset(0);  // drop any cached pattern from another sizing
  }
  mode_ = mode;
}

void MnaLinearSolver::invalidate() {
  n_ = -1;
  have_symbolic_ = false;
  sparse_.reset(0);
}

namespace {

// Typed, not MnaAssembly&: the Stamper constructor chosen here decides
// whether every stamp of every Newton iteration goes through a virtual
// call or an inlined write.
template <class Assembly>
void assemble(const Circuit& circuit, const EvalContext& ctx,
              Assembly& assembly) {
  Stamper stamper(assembly);
  for (const auto& dev : circuit.devices()) dev->stamp(stamper, ctx);
}

}  // namespace

void MnaLinearSolver::solve_iteration(const Circuit& circuit,
                                      const EvalContext& ctx,
                                      linalg::Vector& x) {
  FTL_EXPECTS(n_ > 0);
  const std::size_t n = static_cast<std::size_t>(n_);
  AtomicSpiceCounters& counters = spice_counter_cells();
  counters.newton_iterations.fetch_add(1, std::memory_order_relaxed);

  if (sparse_active_) {
    sparse_.reset(n);
    assemble(circuit, ctx, sparse_);
    const bool pattern_changed = sparse_.finalize();
    if (pattern_changed) have_symbolic_ = false;

    const linalg::CsrView a = sparse_.matrix();
    bool factored = false;
    try {
      if (have_symbolic_ && sparse_lu_.refactor(a)) {
        counters.refactors.fetch_add(1, std::memory_order_relaxed);
        factored = true;
      } else {
        sparse_lu_.factor(a);
        counters.factors.fetch_add(1, std::memory_order_relaxed);
        have_symbolic_ = true;
        factored = true;
      }
    } catch (const ftl::Error&) {
      have_symbolic_ = false;  // fall through to the dense rescue below
      counters.dense_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
    if (factored) {
      sparse_lu_.solve(sparse_.rhs(), x);
      return;
    }
    // Sparse pivoting gave out (near-singular system). Re-assemble densely
    // once — the dense kernel's full pivot search is the last word; if it
    // also reports singular, the ftl::Error propagates to the caller.
    dense_.reset(n);
    assemble(circuit, ctx, dense_);
    dense_lu_.refactor(dense_.matrix());
    dense_lu_.solve(dense_.rhs(), x);
    return;
  }

  counters.dense_solves.fetch_add(1, std::memory_order_relaxed);
  dense_.reset(n);
  assemble(circuit, ctx, dense_);
  dense_lu_.refactor(dense_.matrix());
  dense_lu_.solve(dense_.rhs(), x);
}

}  // namespace ftl::spice
