#include "ftl/spice/linear_solver.hpp"

#include "ftl/spice/circuit.hpp"
#include "ftl/util/error.hpp"

namespace ftl::spice {

void MnaLinearSolver::prepare(int n, MatrixMode mode) {
  const bool want_sparse =
      mode == MatrixMode::kSparse ||
      (mode == MatrixMode::kAuto && n >= kDenseCutover);
  if (n != n_ || want_sparse != sparse_active_) {
    n_ = n;
    sparse_active_ = want_sparse;
    have_symbolic_ = false;
    sparse_.reset(0);  // drop any cached pattern from another sizing
  }
  mode_ = mode;
}

void MnaLinearSolver::invalidate() {
  n_ = -1;
  have_symbolic_ = false;
  sparse_.reset(0);
}

namespace {

// Typed, not MnaAssembly&: the Stamper constructor chosen here decides
// whether every stamp of every Newton iteration goes through a virtual
// call or an inlined write.
template <class Assembly>
void assemble(const Circuit& circuit, const EvalContext& ctx,
              Assembly& assembly) {
  Stamper stamper(assembly);
  for (const auto& dev : circuit.devices()) dev->stamp(stamper, ctx);
}

}  // namespace

void MnaLinearSolver::solve_iteration(const Circuit& circuit,
                                      const EvalContext& ctx,
                                      linalg::Vector& x) {
  FTL_EXPECTS(n_ > 0);
  const std::size_t n = static_cast<std::size_t>(n_);

  if (sparse_active_) {
    sparse_.reset(n);
    assemble(circuit, ctx, sparse_);
    const bool pattern_changed = sparse_.finalize();
    if (pattern_changed) have_symbolic_ = false;

    const linalg::CsrView a = sparse_.matrix();
    bool factored = false;
    try {
      if (have_symbolic_ && sparse_lu_.refactor(a)) {
        factored = true;
      } else {
        sparse_lu_.factor(a);
        have_symbolic_ = true;
        factored = true;
      }
    } catch (const ftl::Error&) {
      have_symbolic_ = false;  // fall through to the dense rescue below
    }
    if (factored) {
      sparse_lu_.solve(sparse_.rhs(), x);
      return;
    }
    // Sparse pivoting gave out (near-singular system). Re-assemble densely
    // once — the dense kernel's full pivot search is the last word; if it
    // also reports singular, the ftl::Error propagates to the caller.
    dense_.reset(n);
    assemble(circuit, ctx, dense_);
    dense_lu_.refactor(dense_.matrix());
    dense_lu_.solve(dense_.rhs(), x);
    return;
  }

  dense_.reset(n);
  assemble(circuit, ctx, dense_);
  dense_lu_.refactor(dense_.matrix());
  dense_lu_.solve(dense_.rhs(), x);
}

}  // namespace ftl::spice
