#pragma once
// Transient result container: sampled node voltages (and source branch
// currents) over time, queryable by node name.

#include <string>
#include <unordered_map>
#include <vector>

#include "ftl/linalg/matrix.hpp"

namespace ftl::spice {

/// Time-indexed samples of every recorded signal.
class TransientResult {
 public:
  const linalg::Vector& time() const { return time_; }

  /// Sampled voltages of a recorded node. Throws ftl::Error when unknown.
  const linalg::Vector& signal(const std::string& name) const;

  bool has_signal(const std::string& name) const;

  std::vector<std::string> signal_names() const;

  /// Appends a time point (analysis-internal).
  void append(double t);
  void record(const std::string& name, double value);

  std::size_t size() const { return time_.size(); }

  /// Total Newton iterations spent across the run (operating point plus
  /// every accepted or halved step) — the solver-cost counter the jobs
  /// telemetry surfaces per transient job.
  int newton_iterations() const { return newton_iterations_; }
  void add_newton_iterations(int n) { newton_iterations_ += n; }

 private:
  linalg::Vector time_;
  std::unordered_map<std::string, linalg::Vector> signals_;
  int newton_iterations_ = 0;
};

}  // namespace ftl::spice
