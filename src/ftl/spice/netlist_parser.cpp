#include "ftl/spice/netlist_parser.hpp"

#include <map>
#include <sstream>

#include "ftl/spice/devices.hpp"
#include "ftl/spice/mosfet.hpp"
#include "ftl/spice/mosfet3.hpp"
#include "ftl/spice/sources.hpp"
#include "ftl/util/error.hpp"
#include "ftl/util/strings.hpp"
#include "ftl/util/units.hpp"

namespace ftl::spice {
namespace {

using util::iequals;
using util::istarts_with;
using util::to_lower;

[[noreturn]] void fail(int line, const std::string& message) {
  throw ftl::Error("netlist line " + std::to_string(line) + ": " + message);
}

[[noreturn]] void fail(const util::SourceLoc& loc, const std::string& message) {
  throw ftl::Error("netlist line " + std::to_string(loc.line) + ", col " +
                   std::to_string(loc.column) + ": " + message);
}

double number(int line, const std::string& token) {
  const auto v = util::parse_engineering(token);
  if (!v) fail(line, "malformed number '" + token + "'");
  return *v;
}

/// Splits a physical line into tokens, treating parentheses and commas as
/// whitespace (SPICE function-call syntax is decorative).
std::vector<std::string> tokenize(const std::string& line) {
  std::string cleaned = line;
  for (char& c : cleaned) {
    if (c == '(' || c == ')' || c == ',') c = ' ';
  }
  return util::split(cleaned, " \t");
}

struct KeyValues {
  std::vector<std::string> positional;
  std::map<std::string, std::string> named;  // lower-cased keys
};

KeyValues classify(const std::vector<std::string>& tokens, std::size_t from) {
  KeyValues kv;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      kv.positional.push_back(tokens[i]);
    } else {
      kv.named[to_lower(tokens[i].substr(0, eq))] = tokens[i].substr(eq + 1);
    }
  }
  return kv;
}

Waveform parse_source_waveform(int line, const KeyValues& kv) {
  const auto& p = kv.positional;
  if (p.empty()) fail(line, "source needs a value or waveform");
  if (iequals(p[0], "dc")) {
    if (p.size() < 2) fail(line, "DC needs a value");
    return Waveform::dc(number(line, p[1]));
  }
  if (iequals(p[0], "pulse")) {
    if (p.size() < 7) fail(line, "PULSE needs v1 v2 delay rise fall width [period]");
    const double period = p.size() >= 8 ? number(line, p[7]) : 0.0;
    return Waveform::pulse(number(line, p[1]), number(line, p[2]),
                           number(line, p[3]), number(line, p[4]),
                           number(line, p[5]), number(line, p[6]), period);
  }
  if (iequals(p[0], "pwl")) {
    if (p.size() < 3 || (p.size() - 1) % 2 != 0) {
      fail(line, "PWL needs t/v pairs");
    }
    std::vector<std::pair<double, double>> points;
    for (std::size_t i = 1; i + 1 < p.size(); i += 2) {
      points.emplace_back(number(line, p[i]), number(line, p[i + 1]));
    }
    return Waveform::pwl(std::move(points));
  }
  if (iequals(p[0], "sin")) {
    if (p.size() < 4) fail(line, "SIN needs offset amplitude frequency");
    const double delay = p.size() >= 5 ? number(line, p[4]) : 0.0;
    const double damping = p.size() >= 6 ? number(line, p[5]) : 0.0;
    return Waveform::sin(number(line, p[1]), number(line, p[2]),
                         number(line, p[3]), delay, damping);
  }
  return Waveform::dc(number(line, p[0]));
}

}  // namespace

ParsedNetlist parse_netlist(const std::string& text) {
  // Pass 1: strip comments, join + continuations, keep line/column of the
  // first physical line of every card.
  struct Card {
    util::SourceLoc loc;
    std::string text;
  };
  std::vector<Card> lines;
  {
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
      ++line_no;
      std::string_view v = util::trim(raw);
      if (const auto semi = v.find(';'); semi != std::string_view::npos) {
        v = util::trim(v.substr(0, semi));
      }
      if (v.empty() || v.front() == '*') continue;
      const int column =
          v.empty() ? 1 : static_cast<int>(v.data() - raw.data()) + 1;
      if (v.front() == '+') {
        if (lines.empty()) fail(line_no, "continuation without a previous card");
        lines.back().text += ' ';
        lines.back().text += std::string(v.substr(1));
      } else {
        lines.push_back({{line_no, column}, std::string(v)});
      }
    }
  }

  ParsedNetlist out;
  bool first_card = true;

  // Node lookup with alias rejection: SPICE decks are conventionally
  // case-insensitive, so two spellings differing only in case almost always
  // mean one intended node. Creating both silently splits the net, which
  // surfaces much later as a singular matrix; reject it at the card.
  std::map<std::string, std::string> node_spellings;  // lower-cased -> first
  const auto node = [&](const util::SourceLoc& loc,
                        const std::string& name) -> int {
    // Ground spellings ("0", "gnd", "GND") are aliases by design.
    if (name == "0" || iequals(name, "gnd")) return out.circuit.node(name);
    const std::string key = to_lower(name);
    const auto [it, inserted] = node_spellings.emplace(key, name);
    if (!inserted && it->second != name) {
      fail(loc, "node '" + name + "' conflicts with earlier spelling '" +
                    it->second + "' (case-insensitive duplicate alias)");
    }
    return out.circuit.node(name);
  };

  // Pass 2a: collect .model cards first so device order does not matter.
  struct ModelCard {
    int level = 1;
    fit::Level3Params params;  // superset; level-1 ignores theta/vc
  };
  std::map<std::string, ModelCard> models;  // lower-cased names
  for (const auto& [loc, card] : lines) {
    const int line_no = loc.line;
    if (!istarts_with(card, ".model")) continue;
    const std::vector<std::string> tokens = tokenize(card);
    if (tokens.size() < 3 || !iequals(tokens[2], "nmos")) {
      fail(line_no, ".model supports only NMOS cards");
    }
    const KeyValues kv = classify(tokens, 3);
    ModelCard model;
    model.params.kp = 2e-5;
    model.params.vth = 1.0;
    model.params.lambda = 0.0;
    model.params.theta = 0.0;
    model.params.vc = 1e9;
    model.params.width = 1e-6;
    model.params.length = 1e-6;
    for (const auto& [key, value] : kv.named) {
      const double v = number(line_no, value);
      if (key == "kp") model.params.kp = v;
      else if (key == "vto" || key == "vth") model.params.vth = v;
      else if (key == "lambda") model.params.lambda = v;
      else if (key == "theta") model.params.theta = v;
      else if (key == "vc" || key == "vmax") model.params.vc = v;
      else if (key == "w") model.params.width = v;
      else if (key == "l") model.params.length = v;
      else if (key == "level") {
        if (v != 1.0 && v != 3.0) fail(line_no, "only LEVEL=1 and LEVEL=3 are supported");
        model.level = static_cast<int>(v);
      } else {
        fail(line_no, "unknown .model parameter '" + key + "'");
      }
    }
    if (model.level == 1 && (model.params.theta != 0.0 || model.params.vc != 1e9)) {
      fail(line_no, "THETA/VC require LEVEL=3");
    }
    models[to_lower(tokens[1])] = model;
  }

  // Pass 2b: elements and directives.
  for (const auto& [loc, card] : lines) {
    const int line_no = loc.line;
    const std::vector<std::string> tokens = tokenize(card);
    const std::string& head = tokens[0];

    if (head[0] == '.') {
      if (istarts_with(head, ".model") || iequals(head, ".end")) {
        // models handled above; .end is decorative
      } else if (iequals(head, ".tran")) {
        if (tokens.size() < 3) fail(line_no, ".tran needs <dt> <tstop>");
        TransientOptions tran;
        tran.dt = number(line_no, tokens[1]);
        tran.tstop = number(line_no, tokens[2]);
        out.tran = tran;
      } else if (iequals(head, ".dc")) {
        if (tokens.size() < 5) fail(line_no, ".dc needs <source> <start> <stop> <step>");
        out.dc = DcDirective{tokens[1], number(line_no, tokens[2]),
                             number(line_no, tokens[3]), number(line_no, tokens[4])};
      } else {
        fail(line_no, "unsupported directive '" + head + "'");
      }
      first_card = false;
      continue;
    }

    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(head[0])));
    const bool looks_like_element =
        (kind == 'r' || kind == 'c' || kind == 'v' || kind == 'i' || kind == 'm');
    if (first_card && !looks_like_element) {
      out.title = card;  // conventional SPICE title line
      first_card = false;
      continue;
    }
    first_card = false;
    if (!looks_like_element) fail(line_no, "unknown element '" + head + "'");
    out.device_locations.emplace(head, loc);

    switch (kind) {
      case 'r': {
        if (tokens.size() < 4) fail(line_no, "R needs 2 nodes and a value");
        const double value = number(line_no, tokens[3]);
        // Validate here so a bad deck raises a located ftl::Error instead of
        // tripping the Resistor constructor's contract (a logic_error).
        if (value <= 0.0) fail(line_no, "resistance must be positive");
        out.circuit.add(std::make_unique<Resistor>(
            head, node(loc, tokens[1]), node(loc, tokens[2]), value));
        break;
      }
      case 'c': {
        if (tokens.size() < 4) fail(line_no, "C needs 2 nodes and a value");
        const double value = number(line_no, tokens[3]);
        if (value <= 0.0) fail(line_no, "capacitance must be positive");
        out.circuit.add(std::make_unique<Capacitor>(
            head, node(loc, tokens[1]), node(loc, tokens[2]), value));
        break;
      }
      case 'v': {
        if (tokens.size() < 4) fail(line_no, "V needs 2 nodes and a waveform");
        const KeyValues kv = classify(tokens, 3);
        out.circuit.add(std::make_unique<VoltageSource>(
            head, node(loc, tokens[1]), node(loc, tokens[2]),
            parse_source_waveform(line_no, kv)));
        break;
      }
      case 'i': {
        if (tokens.size() < 4) fail(line_no, "I needs 2 nodes and a waveform");
        const KeyValues kv = classify(tokens, 3);
        out.circuit.add(std::make_unique<CurrentSource>(
            head, node(loc, tokens[1]), node(loc, tokens[2]),
            parse_source_waveform(line_no, kv)));
        break;
      }
      case 'm': {
        if (tokens.size() < 6) fail(line_no, "M needs d g s b nodes and a model");
        const auto model_it = models.find(to_lower(tokens[5]));
        if (model_it == models.end()) {
          fail(line_no, "unknown model '" + tokens[5] + "'");
        }
        fit::Level3Params params = model_it->second.params;
        const KeyValues kv = classify(tokens, 6);
        for (const auto& [key, value] : kv.named) {
          const double v = number(line_no, value);
          if (key == "w") params.width = v;
          else if (key == "l") params.length = v;
          else fail(line_no, "unknown MOSFET parameter '" + key + "'");
        }
        if (params.width <= 0.0 || params.length <= 0.0) {
          fail(line_no, "MOSFET W and L must be positive");
        }
        if (model_it->second.level == 3 && params.vc <= 0.0) {
          fail(line_no, "LEVEL=3 VC must be positive");
        }
        const int d = node(loc, tokens[1]);
        const int g = node(loc, tokens[2]);
        const int s = node(loc, tokens[3]);
        const int b = node(loc, tokens[4]);
        if (model_it->second.level == 3) {
          out.circuit.add(std::make_unique<Mosfet3>(head, d, g, s, b, params));
        } else {
          fit::Level1Params l1;
          l1.kp = params.kp;
          l1.vth = params.vth;
          l1.lambda = params.lambda;
          l1.width = params.width;
          l1.length = params.length;
          out.circuit.add(std::make_unique<Mosfet>(head, d, g, s, b, l1));
        }
        break;
      }
      default:
        fail(line_no, "unreachable element kind");
    }
  }
  return out;
}

}  // namespace ftl::spice
