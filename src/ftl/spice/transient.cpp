#include "ftl/spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/spice/sources.hpp"
#include "ftl/util/error.hpp"

namespace ftl::spice {

TransientResult transient(Circuit& circuit, const TransientOptions& options) {
  FTL_EXPECTS_MSG(options.tstop > 0.0 && options.dt > 0.0,
                  "transient requires positive tstop and dt");

  // Initial condition: DC operating point at t = 0.
  OpResult op = dc_operating_point(circuit, options.newton);
  for (const auto& dev : circuit.devices()) dev->initialize_state(op.solution);

  TransientResult result;
  result.add_newton_iterations(op.iterations);
  const auto record = [&](double t, const linalg::Vector& solution) {
    result.append(t);
    if (options.record_nodes.empty()) {
      for (int i = 0; i < circuit.node_count(); ++i) {
        result.record(circuit.node_name(i),
                      solution[static_cast<std::size_t>(i)]);
      }
    } else {
      for (const std::string& name : options.record_nodes) {
        const int node = circuit.find_node(name);
        result.record(name, node < 0 ? 0.0
                                     : solution[static_cast<std::size_t>(node)]);
      }
    }
    for (const std::string& name : options.record_source_currents) {
      const auto& src = dynamic_cast<const VoltageSource&>(circuit.device(name));
      result.record("I(" + name + ")", src.current(solution));
    }
  };
  record(0.0, op.solution);

  // Breakpoint schedule: source slope discontinuities must coincide with
  // step boundaries, and the integrator restarts (one backward-Euler step)
  // after each, or the trapezoidal rule rings across the corner.
  std::vector<double> breakpoints;
  for (const auto& dev : circuit.devices()) {
    dev->add_breakpoints(options.tstop, breakpoints);
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  const double bp_tol = 1e-12 * options.tstop;
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end(),
                                [bp_tol](double a, double b) {
                                  return b - a <= bp_tol;
                                }),
                    breakpoints.end());
  std::size_t next_bp = 0;

  linalg::Vector state = op.solution;
  double t = 0.0;
  bool after_breakpoint = true;  // t = 0 behaves like a breakpoint
  while (t < options.tstop - 1e-18) {
    while (next_bp < breakpoints.size() && breakpoints[next_bp] <= t + bp_tol) {
      ++next_bp;
    }
    double dt = std::min(options.dt, options.tstop - t);
    if (next_bp < breakpoints.size()) {
      dt = std::min(dt, breakpoints[next_bp] - t);
    }
    bool stepped = false;
    for (int attempt = 0; attempt <= options.max_step_halvings; ++attempt) {
      EvalContext ctx;
      ctx.is_transient = true;
      ctx.time = t + dt;
      ctx.dt = dt;
      ctx.integrator = after_breakpoint ? Integrator::kBackwardEuler
                                        : options.integrator;
      ctx.gmin = options.newton.gmin;
      OpResult step = newton_solve(circuit, state, ctx, options.newton);
      result.add_newton_iterations(step.iterations);
      if (step.converged) {
        state = step.solution;
        for (const auto& dev : circuit.devices()) dev->commit_step(state, ctx);
        t += dt;
        // Sub-steps from halving still advance time; record each accepted
        // solve so waveforms stay faithful.
        record(t, state);
        after_breakpoint = next_bp < breakpoints.size() &&
                           std::fabs(breakpoints[next_bp] - t) <= bp_tol;
        stepped = true;
        break;
      }
      dt /= 2.0;
    }
    if (!stepped) {
      throw ftl::Error("transient: Newton failed at t = " + std::to_string(t) +
                       " even after step halving");
    }
  }
  return result;
}

}  // namespace ftl::spice
