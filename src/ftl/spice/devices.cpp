#include "ftl/spice/devices.hpp"

#include "ftl/util/error.hpp"

namespace ftl::spice {

Resistor::Resistor(std::string name, int a, int b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
  FTL_EXPECTS_MSG(resistance > 0.0, "resistance must be positive");
}

void Resistor::stamp(Stamper& stamper, const EvalContext&) const {
  stamper.conductance(a_, b_, 1.0 / resistance_);
}

double Resistor::current(const linalg::Vector& solution) const {
  const double va = a_ < 0 ? 0.0 : solution[static_cast<std::size_t>(a_)];
  const double vb = b_ < 0 ? 0.0 : solution[static_cast<std::size_t>(b_)];
  return (va - vb) / resistance_;
}

Capacitor::Capacitor(std::string name, int a, int b, double capacitance)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance) {
  FTL_EXPECTS_MSG(capacitance > 0.0, "capacitance must be positive");
}

double Capacitor::branch_voltage(const linalg::Vector& solution) const {
  const double va = a_ < 0 ? 0.0 : solution[static_cast<std::size_t>(a_)];
  const double vb = b_ < 0 ? 0.0 : solution[static_cast<std::size_t>(b_)];
  return va - vb;
}

void Capacitor::stamp(Stamper& stamper, const EvalContext& ctx) const {
  if (!ctx.is_transient || ctx.dt <= 0.0) {
    // DC: open circuit. A whisper of conductance keeps nodes that hang only
    // on capacitors from making the operating-point matrix singular.
    stamper.conductance(a_, b_, 1e-12);
    return;
  }
  double g;
  double i_eq;  // history current, injected from b to a
  if (ctx.integrator == Integrator::kBackwardEuler) {
    g = capacitance_ / ctx.dt;
    i_eq = g * v_prev_;
  } else {
    g = 2.0 * capacitance_ / ctx.dt;
    i_eq = g * v_prev_ + i_prev_;
  }
  stamper.conductance(a_, b_, g);
  stamper.current_into(a_, i_eq);
  stamper.current_into(b_, -i_eq);
}

void Capacitor::commit_step(const linalg::Vector& solution,
                            const EvalContext& ctx) {
  const double v_now = branch_voltage(solution);
  if (ctx.dt > 0.0) {
    if (ctx.integrator == Integrator::kBackwardEuler) {
      i_prev_ = capacitance_ * (v_now - v_prev_) / ctx.dt;
    } else {
      i_prev_ = 2.0 * capacitance_ * (v_now - v_prev_) / ctx.dt - i_prev_;
    }
  }
  v_prev_ = v_now;
}

void Capacitor::initialize_state(const linalg::Vector& dc_solution) {
  v_prev_ = branch_voltage(dc_solution);
  i_prev_ = 0.0;
}

DeviceView Resistor::view() const {
  DeviceView v;
  v.kind = DeviceView::Kind::kResistor;
  v.nodes = {a_, b_};
  v.dc_couples = {{a_, b_}};
  v.value = resistance_;
  return v;
}

DeviceView Capacitor::view() const {
  DeviceView v;
  v.kind = DeviceView::Kind::kCapacitor;
  v.nodes = {a_, b_};
  // No dc_couples: a capacitor is an open circuit at the operating point.
  v.value = capacitance_;
  return v;
}

}  // namespace ftl::spice
