#include "ftl/spice/mosfet3.hpp"

#include <algorithm>

#include "ftl/util/error.hpp"

namespace ftl::spice {

Mosfet3::Mosfet3(std::string name, int drain, int gate, int source, int bulk,
                 fit::Level3Params params)
    : Device(std::move(name)), drain_(drain), gate_(gate), source_(source),
      bulk_(bulk), params_(params) {
  FTL_EXPECTS(params.width > 0.0 && params.length > 0.0 && params.vc > 0.0);
  (void)bulk_;
}

void Mosfet3::stamp(Stamper& stamper, const EvalContext& ctx) const {
  double vd = ctx.voltage(drain_);
  double vg = ctx.voltage(gate_);
  double vs = ctx.voltage(source_);

  int d = drain_;
  int s = source_;
  if (vd < vs) {
    std::swap(vd, vs);
    std::swap(d, s);
  }
  const fit::Level3Derivatives lin =
      fit::level3_derivatives(params_, vg - vs, vd - vs);

  const double gm = lin.gm;
  const double gds = lin.gds + ctx.gmin;
  const double i_eq = lin.ids - gm * (vg - vs) - gds * (vd - vs);

  if (d >= 0) {
    stamper.entry(d, d, gds);
    if (gate_ >= 0) stamper.entry(d, gate_, gm);
    if (s >= 0) stamper.entry(d, s, -(gm + gds));
    stamper.rhs(d, -i_eq);
  }
  if (s >= 0) {
    stamper.entry(s, s, gm + gds);
    if (gate_ >= 0) stamper.entry(s, gate_, -gm);
    if (d >= 0) stamper.entry(s, d, -gds);
    stamper.rhs(s, i_eq);
  }
  stamper.conductance(d, -1, ctx.gmin);
  stamper.conductance(s, -1, ctx.gmin);
}

double Mosfet3::drain_current(const linalg::Vector& solution) const {
  const auto v = [&solution](int n) {
    return n < 0 ? 0.0 : solution[static_cast<std::size_t>(n)];
  };
  double vd = v(drain_);
  const double vg = v(gate_);
  double vs = v(source_);
  double sign = 1.0;
  if (vd < vs) {
    std::swap(vd, vs);
    sign = -1.0;
  }
  return sign * fit::level3_ids(params_, vg - vs, vd - vs);
}

DeviceView Mosfet3::view() const {
  DeviceView v;
  v.kind = DeviceView::Kind::kMosfet;
  v.nodes = {drain_, gate_, source_, bulk_};
  v.dc_couples = {{drain_, source_}};  // channel; the gate is insulated
  v.gate_couples = {{drain_, gate_}, {source_, gate_}};
  v.width = params_.width;
  v.length = params_.length;
  return v;
}

}  // namespace ftl::spice
