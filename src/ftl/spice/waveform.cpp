#include "ftl/spice/waveform.hpp"

#include "ftl/util/error.hpp"

namespace ftl::spice {

const linalg::Vector& TransientResult::signal(const std::string& name) const {
  const auto it = signals_.find(name);
  if (it == signals_.end()) throw ftl::Error("unknown signal: " + name);
  return it->second;
}

bool TransientResult::has_signal(const std::string& name) const {
  return signals_.contains(name);
}

std::vector<std::string> TransientResult::signal_names() const {
  std::vector<std::string> names;
  names.reserve(signals_.size());
  for (const auto& [name, _] : signals_) names.push_back(name);
  return names;
}

void TransientResult::append(double t) { time_.push_back(t); }

void TransientResult::record(const std::string& name, double value) {
  signals_[name].push_back(value);
}

}  // namespace ftl::spice
