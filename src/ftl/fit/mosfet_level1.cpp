#include "ftl/fit/mosfet_level1.hpp"

#include "ftl/util/error.hpp"

namespace ftl::fit {

double level1_ids(const Level1Params& p, double vgs, double vds) {
  FTL_EXPECTS(vds >= 0.0);
  const double vov = vgs - p.vth;
  if (vov <= 0.0) return 0.0;
  const double clm = 1.0 + p.lambda * vds;
  if (vds <= vov) {
    return p.beta() * (vov * vds - 0.5 * vds * vds) * clm;
  }
  return 0.5 * p.beta() * vov * vov * clm;
}

Level1Derivatives level1_derivatives(const Level1Params& p, double vgs,
                                     double vds) {
  FTL_EXPECTS(vds >= 0.0);
  Level1Derivatives d;
  const double vov = vgs - p.vth;
  if (vov <= 0.0) return d;
  const double beta = p.beta();
  const double clm = 1.0 + p.lambda * vds;
  if (vds <= vov) {
    const double core = vov * vds - 0.5 * vds * vds;
    d.ids = beta * core * clm;
    d.gm = beta * vds * clm;
    d.gds = beta * ((vov - vds) * clm + core * p.lambda);
  } else {
    const double core = 0.5 * vov * vov;
    d.ids = beta * core * clm;
    d.gm = beta * vov * clm;
    d.gds = beta * core * p.lambda;
  }
  return d;
}

}  // namespace ftl::fit
