#include "ftl/fit/extract.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/linalg/levmar.hpp"
#include "ftl/tcad/extract.hpp"
#include "ftl/util/error.hpp"

namespace ftl::fit {

FitResult fit_level1(const std::vector<IvSample>& samples,
                     const Level1Params& initial, const FitOptions& options) {
  if (samples.empty()) throw ftl::Error("fit_level1: no samples");

  // Residual weights.
  std::vector<double> weight(samples.size(), 1.0);
  if (options.relative_weighting) {
    double i_max = 0.0;
    for (const IvSample& s : samples) i_max = std::max(i_max, std::fabs(s.ids));
    const double floor = std::max(options.floor_fraction * i_max, 1e-30);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      weight[i] = 1.0 / (std::fabs(samples[i].ids) + floor);
    }
  }

  // Parameters p = {kp, vth, lambda}; width/length fixed from `initial`.
  const double width = initial.width;
  const double length = initial.length;
  const auto residuals = [&](const linalg::Vector& p, linalg::Vector& r) {
    Level1Params m{p[0], p[1], p[2], width, length};
    for (std::size_t i = 0; i < samples.size(); ++i) {
      r[i] = weight[i] *
             (level1_ids(m, samples[i].vgs, samples[i].vds) - samples[i].ids);
    }
  };

  linalg::LevMarOptions lm_options;
  lm_options.max_iterations = 500;
  lm_options.lower_bounds = {1e-12, options.vth_min, 0.0};
  lm_options.upper_bounds = {1.0, 20.0, 0.5};
  const linalg::LevMarResult lm = linalg::levenberg_marquardt(
      residuals, {initial.kp, initial.vth, initial.lambda}, samples.size(),
      lm_options);

  FitResult out;
  out.params = Level1Params{lm.parameters[0], lm.parameters[1],
                            lm.parameters[2], width, length};
  // Report the unweighted current RMSE (the paper's figure of merit).
  double ss = 0.0;
  for (const IvSample& s : samples) {
    const double r = level1_ids(out.params, s.vgs, s.vds) - s.ids;
    ss += r * r;
  }
  out.rms = std::sqrt(ss / static_cast<double>(samples.size()));
  out.iterations = lm.iterations;
  out.converged = lm.converged;
  return out;
}

std::vector<IvSample> samples_from_curves(const tcad::IvCurve& idvg,
                                          double vds_of_idvg,
                                          const tcad::IvCurve& idvd,
                                          double vgs_of_idvd, int drain) {
  std::vector<IvSample> samples;
  const linalg::Vector ig = idvg.terminal_magnitude(drain);
  for (std::size_t i = 0; i < idvg.sweep_values.size(); ++i) {
    samples.push_back({idvg.sweep_values[i], vds_of_idvg, ig[i]});
  }
  const linalg::Vector id = idvd.terminal_magnitude(drain);
  for (std::size_t i = 0; i < idvd.sweep_values.size(); ++i) {
    samples.push_back({vgs_of_idvd, idvd.sweep_values[i], id[i]});
  }
  return samples;
}

Level1Params initial_guess(const std::vector<IvSample>& samples, double width,
                           double length) {
  FTL_EXPECTS(!samples.empty());
  // Saturation-leg regression: where vds >= vgs, Id ≈ (beta/2)(vgs - vth)^2,
  // so sqrt(Id) is linear in vgs. Fit a line through the upper half of the
  // curve; the intercept seeds vth and the squared slope seeds kp. This is
  // robust where max-gm extraction (a linear-region method) is not.
  double vg_max = samples.front().vgs;
  for (const IvSample& s : samples) vg_max = std::max(vg_max, s.vgs);

  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int count = 0;
  for (const IvSample& s : samples) {
    if (s.vds < s.vgs || s.vgs < 0.5 * vg_max || s.ids <= 0.0) continue;
    const double y = std::sqrt(s.ids);
    sx += s.vgs;
    sy += y;
    sxx += s.vgs * s.vgs;
    sxy += s.vgs * y;
    ++count;
  }
  double vth = 0.5;
  double kp = 1e-5;
  if (count >= 2) {
    const double denom = count * sxx - sx * sx;
    if (denom > 0.0) {
      const double slope = (count * sxy - sx * sy) / denom;
      const double intercept = (sy - slope * sx) / count;
      if (slope > 0.0) {
        vth = -intercept / slope;
        kp = 2.0 * slope * slope * length / width;
      }
    }
  }
  return Level1Params{kp, vth, 0.01, width, length};
}

FitSweepData paper_fit_sweeps(const tcad::NetworkSolver& solver,
                              const tcad::BiasCase& bias, int points) {
  FitSweepData data;
  // Scenario 1: Vds = 5 V on the drain, Vgs swept 0..5.
  data.idvg = tcad::sweep_gate(solver, bias, 5.0, 0.0, 5.0, points);
  // Scenario 2: Vgs = 5 V, Vds swept 0..5.
  data.idvd = tcad::sweep_drain(solver, bias, 5.0, 0.0, 5.0, points);
  for (std::size_t t = 0; t < 4; ++t) {
    if (bias.roles[t] == tcad::Role::kDrain) data.drain = static_cast<int>(t);
  }
  return data;
}

FitResult fit_level1_paper(const std::vector<IvSample>& samples, double width,
                           double length) {
  FitOptions options;
  options.vth_min = 0.0;  // enhancement devices: the switch must open at 0 V
  return fit_level1(samples, initial_guess(samples, width, length), options);
}

FitResult extract_from_device(const tcad::NetworkSolver& solver,
                              const tcad::BiasCase& bias, double width,
                              double length) {
  const FitSweepData data = paper_fit_sweeps(solver, bias);
  return fit_level1_paper(
      samples_from_curves(data.idvg, 5.0, data.idvd, 5.0, data.drain), width,
      length);
}

Fit3Result fit_level3(const std::vector<IvSample>& samples,
                      const Level1Params& level1_seed,
                      const FitOptions& options) {
  if (samples.empty()) throw ftl::Error("fit_level3: no samples");

  std::vector<double> weight(samples.size(), 1.0);
  if (options.relative_weighting) {
    double i_max = 0.0;
    for (const IvSample& s : samples) i_max = std::max(i_max, std::fabs(s.ids));
    const double floor = std::max(options.floor_fraction * i_max, 1e-30);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      weight[i] = 1.0 / (std::fabs(samples[i].ids) + floor);
    }
  }

  const double width = level1_seed.width;
  const double length = level1_seed.length;
  // Parameters p = {kp, vth, lambda, theta, vc}.
  const auto residuals = [&](const linalg::Vector& p, linalg::Vector& r) {
    Level3Params m{p[0], p[1], p[2], p[3], p[4], width, length};
    for (std::size_t i = 0; i < samples.size(); ++i) {
      r[i] = weight[i] *
             (level3_ids(m, samples[i].vgs, samples[i].vds) - samples[i].ids);
    }
  };

  linalg::LevMarOptions lm_options;
  lm_options.max_iterations = 800;
  lm_options.lower_bounds = {1e-12, options.vth_min, 0.0, 0.0, 0.5};
  lm_options.upper_bounds = {1.0, 20.0, 0.5, 5.0, 1e4};
  const linalg::LevMarResult lm = linalg::levenberg_marquardt(
      residuals,
      {level1_seed.kp, std::max(level1_seed.vth, options.vth_min + 0.01), 0.01,
       0.1, 20.0},
      samples.size(), lm_options);

  Fit3Result out;
  out.params = Level3Params{lm.parameters[0], lm.parameters[1],
                            lm.parameters[2], lm.parameters[3],
                            lm.parameters[4], width,         length};
  double ss = 0.0;
  for (const IvSample& s : samples) {
    const double r = level3_ids(out.params, s.vgs, s.vds) - s.ids;
    ss += r * r;
  }
  out.rms = std::sqrt(ss / static_cast<double>(samples.size()));
  out.iterations = lm.iterations;
  out.converged = lm.converged;
  return out;
}

Fit3Result extract_level3_from_device(const tcad::NetworkSolver& solver,
                                      const tcad::BiasCase& bias, double width,
                                      double length) {
  const FitResult seed = extract_from_device(solver, bias, width, length);
  const tcad::IvCurve idvg = tcad::sweep_gate(solver, bias, 5.0, 0.0, 5.0, 26);
  const tcad::IvCurve idvd = tcad::sweep_drain(solver, bias, 5.0, 0.0, 5.0, 26);
  int drain = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    if (bias.roles[t] == tcad::Role::kDrain) drain = static_cast<int>(t);
  }
  FitOptions options;
  options.vth_min = 0.0;
  return fit_level3(samples_from_curves(idvg, 5.0, idvd, 5.0, drain),
                    seed.params, options);
}

}  // namespace ftl::fit
