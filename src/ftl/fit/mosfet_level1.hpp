#pragma once
// The level-1 MOSFET equations exactly as printed in §IV of the paper:
//
//   Ids = 0                                                  Vgs <= Vth
//   Ids = Kp (W/L) [(Vgs-Vth)Vds - Vds^2/2] (1 + lambda Vds)  triode
//   Ids = (Kp/2)(W/L)(Vgs-Vth)^2 (1 + lambda Vds)             saturation
//
// Shared between the fitting pipeline (which extracts Kp, Vth, lambda from
// the TCAD data) and the circuit simulator's MOSFET device model.

namespace ftl::fit {

/// Level-1 parameter set. Kp = mu_n Cox (A/V^2); W, L in metres.
struct Level1Params {
  double kp = 1e-4;      ///< transconductance parameter, A/V^2
  double vth = 1.0;      ///< threshold voltage, V
  double lambda = 0.0;   ///< channel-length modulation, 1/V
  double width = 1e-6;   ///< channel width, m
  double length = 1e-6;  ///< channel length, m

  double beta() const { return kp * width / length; }
};

/// Drain current for vds >= 0 (callers swap terminals for reverse bias).
double level1_ids(const Level1Params& p, double vgs, double vds);

/// Partial derivatives for Newton linearization (vds >= 0).
struct Level1Derivatives {
  double ids = 0.0;
  double gm = 0.0;   ///< dIds/dVgs
  double gds = 0.0;  ///< dIds/dVds
};

Level1Derivatives level1_derivatives(const Level1Params& p, double vgs,
                                     double vds);

}  // namespace ftl::fit
