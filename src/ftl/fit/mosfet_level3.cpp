#include "ftl/fit/mosfet_level3.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::fit {

double level3_vdsat(const Level3Params& p, double vgs) {
  const double vov = vgs - p.vth;
  if (vov <= 0.0) return 0.0;
  return vov / (1.0 + vov / p.vc);
}

double level3_ids(const Level3Params& p, double vgs, double vds) {
  FTL_EXPECTS(vds >= 0.0);
  const double vov = vgs - p.vth;
  if (vov <= 0.0) return 0.0;
  const double beta_eff = p.beta() / (1.0 + p.theta * vov);
  const double vdsat = level3_vdsat(p, vgs);

  const auto triode = [&](double v) {
    return beta_eff * (vov * v - 0.5 * v * v) / (1.0 + v / p.vc);
  };
  if (vds <= vdsat) {
    return triode(vds) * (1.0 + p.lambda * vds);
  }
  // Saturation: pin the core current at Vdsat and continue with the
  // channel-length-modulation slope; continuous at vds = vdsat.
  const double idsat = triode(vdsat) * (1.0 + p.lambda * vdsat);
  return idsat * (1.0 + p.lambda * (vds - vdsat));
}

Level3Derivatives level3_derivatives(const Level3Params& p, double vgs,
                                     double vds) {
  // Central finite differences: the level-3 expressions are piecewise smooth
  // and cheap, so numeric derivatives are accurate and keep the region
  // bookkeeping in one place (the current evaluation).
  Level3Derivatives d;
  d.ids = level3_ids(p, vgs, vds);
  const double h = 1e-6;
  d.gm = (level3_ids(p, vgs + h, vds) - level3_ids(p, vgs - h, vds)) / (2.0 * h);
  d.gds = (level3_ids(p, vgs, vds + h) -
           level3_ids(p, vgs, std::max(vds - h, 0.0))) /
          (vds - h >= 0.0 ? 2.0 * h : h);
  if (d.gm < 0.0) d.gm = 0.0;
  if (d.gds < 0.0) d.gds = 0.0;
  return d;
}

}  // namespace ftl::fit
