#pragma once
// Parameter extraction (§IV): fits the level-1 MOSFET equations to TCAD
// sweep data with Levenberg–Marquardt, reproducing the paper's two-scenario
// recipe — an Id-Vg sweep (drain at 5 V) and an Id-Vd sweep (gate at 5 V) on
// the DSFF terminal pair — to obtain Kp, Vth and lambda with minimum RMSE.

#include "ftl/fit/mosfet_level1.hpp"
#include "ftl/fit/mosfet_level3.hpp"
#include "ftl/linalg/matrix.hpp"
#include "ftl/tcad/sweep.hpp"

namespace ftl::fit {

/// One measured operating point.
struct IvSample {
  double vgs = 0.0;
  double vds = 0.0;
  double ids = 0.0;
};

struct FitOptions {
  /// Weight residuals by 1/(|I| + floor_fraction * I_max). Relative
  /// weighting keeps the turn-on region (which pins Vth) from being drowned
  /// out by the high-current points; without it the level-1 fit to
  /// mobility-degraded data drags Vth below zero.
  bool relative_weighting = true;
  double floor_fraction = 0.05;
  /// Lower bound on the fitted threshold. The §IV pipeline pins this at 0
  /// for the enhancement devices: a square-law fit to mobility-degraded
  /// data can otherwise drift slightly negative, which would leave the
  /// logic switch conducting at Vgs = 0. Set below zero to fit
  /// depletion-mode data.
  double vth_min = -20.0;
};

struct FitResult {
  Level1Params params;
  double rms = 0.0;  ///< root-mean-square current residual (unweighted), A
  int iterations = 0;
  bool converged = false;
};

/// Fits Kp, Vth and lambda to `samples` at fixed W/L. `initial` seeds the
/// search (its width/length are preserved). Throws ftl::Error on an empty
/// sample set.
FitResult fit_level1(const std::vector<IvSample>& samples,
                     const Level1Params& initial, const FitOptions& options = {});

/// Builds the sample set from TCAD curves: an Id-Vg curve at fixed vds and
/// an Id-Vd curve at fixed vgs, using terminal `drain`'s current.
std::vector<IvSample> samples_from_curves(const tcad::IvCurve& idvg,
                                          double vds_of_idvg,
                                          const tcad::IvCurve& idvd,
                                          double vgs_of_idvd, int drain);

/// Heuristic initial guess: Vth by max-gm on the Id-Vg data, Kp from the
/// strongest saturation sample, lambda = 0.
Level1Params initial_guess(const std::vector<IvSample>& samples, double width,
                           double length);

/// The two TCAD sweeps of the paper's §IV recipe (Id-Vg at Vds = 5 V and
/// Id-Vd at Vgs = 5 V on the given terminal-role case), separated from the
/// fit itself so a job pipeline can cache the sweep data and re-fit without
/// re-simulating.
struct FitSweepData {
  tcad::IvCurve idvg;  ///< Vgs swept 0..5 V at Vds = 5 V
  tcad::IvCurve idvd;  ///< Vds swept 0..5 V at Vgs = 5 V
  int drain = 0;       ///< drain-role terminal index the samples use
};

FitSweepData paper_fit_sweeps(const tcad::NetworkSolver& solver,
                              const tcad::BiasCase& bias, int points = 26);

/// The §IV level-1 fit applied to previously captured sweep samples
/// (enhancement-device recipe: Vth floored at 0).
FitResult fit_level1_paper(const std::vector<IvSample>& samples, double width,
                           double length);

/// Full paper pipeline: runs the DSFF (adjacent-pair) sweeps on a device
/// solver, extracts the level-1 parameters. `length` is the effective
/// channel length assigned to the fitted transistor (Type A: 0.35 um,
/// Type B: 0.5 um in the paper's model).
FitResult extract_from_device(const tcad::NetworkSolver& solver,
                              const tcad::BiasCase& bias, double width,
                              double length);

// ---- Level-3 extraction (§VI-A "more accurate model" extension) ----------

struct Fit3Result {
  Level3Params params;
  double rms = 0.0;  ///< unweighted current RMSE, A
  int iterations = 0;
  bool converged = false;
};

/// Fits the five level-3 parameters {kp, vth, lambda, theta, vc} to
/// `samples`, seeded from a completed level-1 fit.
Fit3Result fit_level3(const std::vector<IvSample>& samples,
                      const Level1Params& level1_seed,
                      const FitOptions& options = {});

/// Level-3 variant of the device pipeline.
Fit3Result extract_level3_from_device(const tcad::NetworkSolver& solver,
                                      const tcad::BiasCase& bias, double width,
                                      double length);

}  // namespace ftl::fit
