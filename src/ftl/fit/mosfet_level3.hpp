#pragma once
// Simplified level-3 MOSFET equations — the "more accurate transistor model"
// the paper schedules as future work (§VI-A). Two short-channel effects are
// added on top of the level-1 square law:
//   - first-order mobility degradation:  mu_eff = mu0 / (1 + theta (Vgs-Vth))
//   - velocity saturation via a critical voltage vc = Ec*L:
//       the triode current gains a 1 / (1 + Vds/vc) factor and the
//       saturation voltage drops from Vov to  Vdsat = Vov / (1 + Vov/vc).
// Channel-length modulation keeps the level-1 (1 + lambda Vds) form. The
// expressions are continuous (value-wise) across the region boundary.

#include "ftl/fit/mosfet_level1.hpp"

namespace ftl::fit {

/// Level-3 parameter set; degenerates to level-1 when theta = 0, vc -> inf.
struct Level3Params {
  double kp = 1e-4;      ///< low-field transconductance parameter, A/V^2
  double vth = 1.0;      ///< V
  double lambda = 0.0;   ///< 1/V
  double theta = 0.0;    ///< mobility degradation, 1/V
  double vc = 1e9;       ///< velocity-saturation voltage Ec*L, V
  double width = 1e-6;
  double length = 1e-6;

  double beta() const { return kp * width / length; }
};

/// Drain current for vds >= 0.
double level3_ids(const Level3Params& p, double vgs, double vds);

/// Saturation voltage Vdsat = Vov / (1 + Vov/vc) (0 in cutoff).
double level3_vdsat(const Level3Params& p, double vgs);

struct Level3Derivatives {
  double ids = 0.0;
  double gm = 0.0;
  double gds = 0.0;
};

/// Derivatives for Newton linearization (central finite differences).
Level3Derivatives level3_derivatives(const Level3Params& p, double vgs,
                                     double vds);

}  // namespace ftl::fit
