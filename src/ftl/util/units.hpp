#pragma once
// SI-suffixed engineering number parsing and formatting, SPICE-style.
//
// Accepts the suffix set used by SPICE netlists: f p n u m k meg g t
// (case-insensitive; `meg` = 1e6 because `m` is milli). Trailing unit
// letters after the suffix are ignored, as in "30ns" or "500kOhm".

#include <optional>
#include <string>
#include <string_view>

namespace ftl::util {

/// Parses an engineering-notation value ("1.2k", "10f", "5meg", "30ns").
/// Returns std::nullopt for malformed input.
std::optional<double> parse_engineering(std::string_view text);

/// Same as parse_engineering but throws ftl::Error on malformed input.
double parse_engineering_or_throw(std::string_view text);

/// Formats `value` with an SI suffix and `digits` significant digits,
/// e.g. format_si(1.13e-8, 3, "s") == "11.3ns".
std::string format_si(double value, int digits = 4, std::string_view unit = "");

}  // namespace ftl::util
