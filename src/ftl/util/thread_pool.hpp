#pragma once
// Small fixed-size thread pool for the embarrassingly parallel outer loops:
// terminal-role bias cases, per-device I-V sweeps, and Monte-Carlo
// variability trials. Work is handed out as an index range; every index
// writes its own result slot, so results are bit-identical to a serial run
// regardless of scheduling order.

#include <cstddef>
#include <functional>

namespace ftl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 picks the hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1; the calling thread also participates in jobs).
  std::size_t size() const;

  /// Runs fn(i) for every i in [0, count), fanning indices across the
  /// workers, and blocks until all complete. The first exception thrown by
  /// any task is rethrown here after the job drains. Nested calls from
  /// inside a task run inline (serially) to avoid deadlock.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized from FTL_THREADS (when set and positive) or
  /// the hardware concurrency.
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
};

/// Convenience wrapper over ThreadPool::global(). `max_threads` caps the
/// effective parallelism for this job (0 = no cap); with a cap of 1 the loop
/// runs serially on the calling thread.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t max_threads = 0);

}  // namespace ftl::util
