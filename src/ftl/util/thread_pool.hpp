#pragma once
// Small fixed-size thread pool for the embarrassingly parallel outer loops:
// terminal-role bias cases, per-device I-V sweeps, and Monte-Carlo
// variability trials. Work is handed out two ways:
//  - parallel_for: an index range; every index writes its own result slot,
//    so results are bit-identical to a serial run regardless of scheduling
//    order.
//  - submit: a single task with a future, used by the jobs::run_graph
//    scheduler to fan independent DAG nodes across the workers.

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>

namespace ftl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 picks the hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1; the calling thread also participates in jobs).
  std::size_t size() const;

  /// submit() tasks queued and not yet picked up by a worker. This is the
  /// admission backlog a service built on the pool reports (and bounds).
  std::size_t queue_depth() const;

  /// submit() tasks currently executing (inline runs included).
  std::size_t active_tasks() const;

  /// Runs fn(i) for every i in [0, count), fanning indices across the
  /// workers, and blocks until all complete. The first exception thrown by
  /// any task is rethrown here after the job drains. Nested calls from
  /// inside a task run inline (serially) to avoid deadlock.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Schedules `fn` to run on a pool worker and returns a future for its
  /// result. Exceptions thrown by the task are captured in the future. A
  /// submit from inside a pool task runs inline before returning (the
  /// future is already ready), so a task may submit-and-wait without
  /// deadlocking the pool; the same applies when the pool has no workers.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Process-wide pool, sized from FTL_THREADS (when set and positive) or
  /// the hardware concurrency.
  static ThreadPool& global();

 private:
  /// Queues a type-erased task (or runs it inline when called from inside a
  /// pool task or on a workerless pool).
  void enqueue(std::function<void()> task);

  struct Impl;
  Impl* impl_;
};

/// Convenience wrapper over ThreadPool::global(). `max_threads` caps the
/// effective parallelism for this job (0 = no cap); with a cap of 1 the loop
/// runs serially on the calling thread.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t max_threads = 0);

}  // namespace ftl::util
