#include "ftl/util/csv.hpp"

#include <limits>
#include <sstream>

#include "ftl/util/error.hpp"

namespace ftl::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw Error("cannot open CSV file for writing: " + path);
  out_.precision(std::numeric_limits<double>::max_digits10);
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  write_row(columns);
  rows_ = 0;  // header does not count as data
}

void CsvWriter::write_row(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t line_start = 0;
  while (line_start < text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    std::vector<std::string> cells;
    std::size_t cell_start = 0;
    for (;;) {
      const std::size_t comma = line.find(',', cell_start);
      if (comma == std::string_view::npos) {
        cells.emplace_back(line.substr(cell_start));
        break;
      }
      cells.emplace_back(line.substr(cell_start, comma - cell_start));
      cell_start = comma + 1;
    }
    rows.push_back(std::move(cells));
    line_start = line_end + 1;
  }
  return rows;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

}  // namespace ftl::util
