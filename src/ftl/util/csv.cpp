#include "ftl/util/csv.hpp"

#include <limits>

#include "ftl/util/error.hpp"

namespace ftl::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw Error("cannot open CSV file for writing: " + path);
  out_.precision(std::numeric_limits<double>::max_digits10);
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  write_row(columns);
  rows_ = 0;  // header does not count as data
}

void CsvWriter::write_row(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace ftl::util
