#pragma once
// Error handling and lightweight contracts for the fourterm libraries.
//
// All recoverable failures are reported as ftl::Error (a std::runtime_error);
// programming-contract violations use FTL_EXPECTS / FTL_ENSURES, which throw
// ftl::ContractViolation with file/line context so tests can assert on them.

#include <stdexcept>
#include <string>

namespace ftl {

/// Base class for all recoverable errors raised by fourterm libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an FTL_EXPECTS / FTL_ENSURES contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failed(const char* kind, const char* expr,
                                  const char* file, int line, const char* msg);
}  // namespace detail

}  // namespace ftl

/// Precondition check: throws ftl::ContractViolation when `cond` is false.
#define FTL_EXPECTS(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::ftl::detail::contract_failed("precondition", #cond, __FILE__,         \
                                     __LINE__, nullptr);                      \
  } while (false)

/// Precondition check with an explanatory message.
#define FTL_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond))                                                              \
      ::ftl::detail::contract_failed("precondition", #cond, __FILE__,         \
                                     __LINE__, (msg));                        \
  } while (false)

/// Postcondition check: throws ftl::ContractViolation when `cond` is false.
#define FTL_ENSURES(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::ftl::detail::contract_failed("postcondition", #cond, __FILE__,        \
                                     __LINE__, nullptr);                      \
  } while (false)
