#pragma once
// Minimal CSV writer used by benches and examples to dump sweep data, and
// the matching reader used by the jobs subsystem to load cached artifacts.

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace ftl::util {

/// Writes rows of mixed string/double cells to a CSV file.
/// Throws ftl::Error when the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<double>& values);
  void write_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far (header excluded).
  int rows() const { return rows_; }

 private:
  std::ofstream out_;
  int rows_ = 0;
};

/// Splits CSV text (the format CsvWriter emits: comma-separated cells, no
/// quoting) into rows of string cells. Empty cells are preserved; a trailing
/// newline does not produce an empty final row.
std::vector<std::vector<std::string>> parse_csv(std::string_view text);

/// Reads an entire file; throws ftl::Error when it cannot be opened.
std::string read_text_file(const std::string& path);

}  // namespace ftl::util
