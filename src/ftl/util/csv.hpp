#pragma once
// Minimal CSV writer used by benches and examples to dump sweep data.

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace ftl::util {

/// Writes rows of mixed string/double cells to a CSV file.
/// Throws ftl::Error when the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<double>& values);
  void write_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far (header excluded).
  int rows() const { return rows_; }

 private:
  std::ofstream out_;
  int rows_ = 0;
};

}  // namespace ftl::util
