#pragma once
// A position in an input text (netlist deck, mapping file): 1-based line and
// column. Parsers record one per card; ftl::check diagnostics carry them so
// a report can point at the offending source line. line == 0 means "no
// location" (e.g. a programmatically built circuit).

namespace ftl::util {

struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

}  // namespace ftl::util
