#include "ftl/util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace ftl::util {
namespace {
char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }
}  // namespace

std::vector<std::string> split(std::string_view text, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? text.size() : end;
    if (stop > start) out.emplace_back(text.substr(start, stop - start));
    start = stop + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = lower(c);
  return out;
}

bool istarts_with(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (lower(text[i]) != lower(prefix[i])) return false;
  }
  return true;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() && istarts_with(a, b);
}

std::string format_double(double v, int significant) {
  std::ostringstream os;
  os.precision(significant);
  os << v;
  return os.str();
}

std::optional<long> parse_long(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // strtol needs NUL termination; the copy also rejects embedded NULs
  // (strtol would stop at one and report a clean parse of the prefix).
  const std::string token(text);
  if (token.size() != text.size()) return std::nullopt;
  const char first = token[0];
  if (!(first == '+' || first == '-' || (first >= '0' && first <= '9'))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (errno == ERANGE) return std::nullopt;
  if (end != token.c_str() + token.size()) return std::nullopt;
  return value;
}

std::optional<long> parse_long_in(std::string_view text, long min_value,
                                  long max_value) {
  const std::optional<long> v = parse_long(text);
  if (!v || *v < min_value || *v > max_value) return std::nullopt;
  return v;
}

}  // namespace ftl::util
