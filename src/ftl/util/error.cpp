#include "ftl/util/error.hpp"

#include <sstream>

namespace ftl::detail {

void contract_failed(const char* kind, const char* expr, const char* file,
                     int line, const char* msg) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ':' << line;
  if (msg != nullptr) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace ftl::detail
