#pragma once
// Console table rendering for bench output: the benches print the same
// rows/series the paper reports, side by side with measured values.

#include <string>
#include <vector>

namespace ftl::util {

/// Accumulates rows of strings and renders an aligned ASCII table.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders the table with column alignment and a header rule.
  std::string render() const;

  int rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftl::util
