#include "ftl/util/table.hpp"

#include <algorithm>
#include <sstream>

#include "ftl/util/error.hpp"

namespace ftl::util {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FTL_EXPECTS(!header_.empty());
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << "| " << cell << std::string(width[c] - cell.size(), ' ') << ' ';
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace ftl::util
