#pragma once
// Small string utilities shared across the fourterm libraries.

#include <string>
#include <string_view>
#include <vector>

namespace ftl::util {

/// Splits `text` on any character in `delims`, dropping empty tokens.
std::vector<std::string> split(std::string_view text, std::string_view delims = " \t");

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// ASCII lower-casing (netlists are case-insensitive).
std::string to_lower(std::string_view text);

/// True when `text` starts with `prefix` (case-insensitive).
bool istarts_with(std::string_view text, std::string_view prefix);

/// Case-insensitive equality.
bool iequals(std::string_view a, std::string_view b);

/// printf-style double formatting with fixed significant digits.
std::string format_double(double v, int significant = 6);

}  // namespace ftl::util
