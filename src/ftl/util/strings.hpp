#pragma once
// Small string utilities shared across the fourterm libraries.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ftl::util {

/// Splits `text` on any character in `delims`, dropping empty tokens.
std::vector<std::string> split(std::string_view text, std::string_view delims = " \t");

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// ASCII lower-casing (netlists are case-insensitive).
std::string to_lower(std::string_view text);

/// True when `text` starts with `prefix` (case-insensitive).
bool istarts_with(std::string_view text, std::string_view prefix);

/// Case-insensitive equality.
bool iequals(std::string_view a, std::string_view b);

/// printf-style double formatting with fixed significant digits.
std::string format_double(double v, int significant = 6);

/// Strict base-10 integer parse of the *entire* token: an optional sign
/// followed by digits, nothing else (no whitespace, no "0x", no trailing
/// junk). Disengaged on malformed or out-of-range input — unlike atoi,
/// which silently turns "banana" into 0.
std::optional<long> parse_long(std::string_view text);

/// parse_long restricted to [min_value, max_value]; disengaged outside.
std::optional<long> parse_long_in(std::string_view text, long min_value,
                                  long max_value);

}  // namespace ftl::util
