#include "ftl/util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ftl::util {
namespace {

// Set while a pool task runs on this thread; nested parallel_for calls from
// inside a task must run inline or two jobs would deadlock on one pool.
thread_local bool t_inside_pool_task = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("FTL_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex m;
  std::condition_variable cv_work;  // workers: a job arrived (or shutdown)
  std::condition_variable cv_done;  // caller: all workers left the job
  bool stop = false;

  // Current job (valid while fn != nullptr). Indices are handed out through
  // `next`; each task owns its index, so results are placement-deterministic.
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::size_t generation = 0;
  std::size_t active = 0;       // workers currently running job indices
  std::size_t joined = 0;       // workers admitted to this job
  std::size_t max_extra = 0;    // worker admission cap for this job
  std::exception_ptr error;

  // Serializes concurrent parallel_for callers onto the single job slot.
  std::mutex job_guard;

  // Queued single tasks (submit); drained by workers alongside index jobs.
  std::deque<std::function<void()>> tasks;
  std::atomic<std::size_t> running_tasks{0};  // submit tasks executing now

  void run_indices() {
    t_inside_pool_task = true;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(m);
        if (!error) error = std::current_exception();
      }
    }
    t_inside_pool_task = false;
  }

  void worker_loop() {
    std::size_t last_generation = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(m);
      cv_work.wait(lock, [&] {
        return stop || !tasks.empty() ||
               (fn != nullptr && generation != last_generation);
      });
      if (stop) return;
      if (!tasks.empty()) {
        std::function<void()> task = std::move(tasks.front());
        tasks.pop_front();
        lock.unlock();
        t_inside_pool_task = true;
        ++running_tasks;
        task();  // packaged_task: exceptions land in the caller's future
        --running_tasks;
        t_inside_pool_task = false;
        continue;
      }
      last_generation = generation;
      if (joined >= max_extra) continue;  // admission cap reached
      ++joined;
      ++active;
      lock.unlock();
      run_indices();
      lock.lock();
      if (--active == 0) cv_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) threads = default_thread_count();
  // The caller participates in every job, so spawn one fewer worker.
  const std::size_t extra = threads > 0 ? threads - 1 : 0;
  impl_->workers.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  // Satisfy the futures of any tasks the workers never picked up.
  for (std::function<void()>& task : impl_->tasks) task();
  delete impl_;
}

void ThreadPool::enqueue(std::function<void()> task) {
  // Inline cases: a workerless pool has nobody to hand the task to, and a
  // submit from inside a pool task must not wait on workers the caller may
  // itself be occupying.
  if (impl_->workers.empty() || t_inside_pool_task) {
    ++impl_->running_tasks;
    task();
    --impl_->running_tasks;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->tasks.push_back(std::move(task));
  }
  impl_->cv_work.notify_one();
}

std::size_t ThreadPool::size() const { return impl_->workers.size() + 1; }

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(impl_->m);
  return impl_->tasks.size();
}

std::size_t ThreadPool::active_tasks() const {
  return impl_->running_tasks.load(std::memory_order_relaxed);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Serial fast paths: tiny jobs, a single-thread pool, or a nested call
  // from inside a task (running inline avoids self-deadlock).
  if (count == 1 || impl_->workers.empty() || t_inside_pool_task) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> job_lock(impl_->job_guard);
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->fn = &fn;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->joined = 0;
    impl_->max_extra = impl_->workers.size();
    impl_->error = nullptr;
    ++impl_->generation;
  }
  impl_->cv_work.notify_all();

  impl_->run_indices();

  std::unique_lock<std::mutex> lock(impl_->m);
  // Close admissions: a worker waking now must not enter the draining job,
  // or it could touch `fn` after this frame invalidates it.
  impl_->max_extra = 0;
  impl_->cv_done.wait(lock, [&] { return impl_->active == 0; });
  impl_->fn = nullptr;
  if (impl_->error) {
    std::exception_ptr e = impl_->error;
    impl_->error = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t max_threads) {
  if (max_threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool::global().parallel_for(count, fn);
}

}  // namespace ftl::util
