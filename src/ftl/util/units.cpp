#include "ftl/util/units.hpp"

#include <cctype>
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "ftl/util/error.hpp"

namespace ftl::util {
namespace {

bool is_unit_letter(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0; }

char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }

}  // namespace

std::optional<double> parse_engineering(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  const char* begin = buf.c_str();
  char* end = nullptr;
  errno = 0;
  const double mantissa = std::strtod(begin, &end);
  if (end == begin || errno == ERANGE) return std::nullopt;

  std::string_view rest(end);
  double scale = 1.0;
  if (!rest.empty()) {
    if (!is_unit_letter(rest.front())) return std::nullopt;
    // `meg` must be tested before `m`.
    if (rest.size() >= 3 && lower(rest[0]) == 'm' && lower(rest[1]) == 'e' &&
        lower(rest[2]) == 'g') {
      scale = 1e6;
      rest.remove_prefix(3);
    } else {
      switch (lower(rest.front())) {
        case 'a': scale = 1e-18; rest.remove_prefix(1); break;
        case 'f': scale = 1e-15; rest.remove_prefix(1); break;
        case 'p': scale = 1e-12; rest.remove_prefix(1); break;
        case 'n': scale = 1e-9;  rest.remove_prefix(1); break;
        case 'u': scale = 1e-6;  rest.remove_prefix(1); break;
        case 'm': scale = 1e-3;  rest.remove_prefix(1); break;
        case 'k': scale = 1e3;   rest.remove_prefix(1); break;
        case 'g': scale = 1e9;   rest.remove_prefix(1); break;
        case 't': scale = 1e12;  rest.remove_prefix(1); break;
        default:
          // A bare unit such as "3V" or "5Ohm": no scaling.
          scale = 1.0;
          break;
      }
    }
    // Whatever remains must be unit letters only ("s", "V", "Ohm", ...).
    for (char c : rest) {
      if (!is_unit_letter(c)) return std::nullopt;
    }
  }
  return mantissa * scale;
}

double parse_engineering_or_throw(std::string_view text) {
  auto v = parse_engineering(text);
  if (!v) throw Error("malformed engineering number: '" + std::string(text) + "'");
  return *v;
}

std::string format_si(double value, int digits, std::string_view unit) {
  FTL_EXPECTS(digits >= 1 && digits <= 17);
  if (value == 0.0 || !std::isfinite(value)) {
    std::ostringstream os;
    os << value << unit;
    return os.str();
  }
  struct Band { double scale; const char* prefix; };
  static constexpr Band kBands[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
      {1e-18, "a"},
  };
  const double mag = std::fabs(value);
  const Band* chosen = &kBands[sizeof(kBands) / sizeof(kBands[0]) - 1];
  for (const Band& b : kBands) {
    if (mag >= b.scale) {
      chosen = &b;
      break;
    }
  }
  const double mantissa = value / chosen->scale;
  // Never fall back to scientific notation: a 3-digit mantissa needs at
  // least 3 significant digits ("200ps", not "2e+02ps").
  const int integer_digits =
      std::fabs(mantissa) >= 1.0
          ? static_cast<int>(std::floor(std::log10(std::fabs(mantissa)))) + 1
          : 1;
  std::ostringstream os;
  os.precision(std::max(digits, integer_digits));
  os << mantissa << chosen->prefix << unit;
  return os.str();
}

}  // namespace ftl::util
