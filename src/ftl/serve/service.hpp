#pragma once
// The in-process request engine behind ftl_serve. One Service owns the
// worker pool, the bounded admission queue, the response cache, and the
// stats registry; the TCP Server (server.hpp) is a thin byte-shuffling
// front-end over it, and tests drive the Service directly.
//
// Protocol: one JSON object per line. Every request carries "op" plus
// op-specific parameters; "id" (any JSON scalar) is echoed back verbatim
// and "deadline_ms" bounds the request's wall time from submission.
// Responses always carry "op" and "ok"; failures add "error" (one of
// bad_request, deadline_exceeded, overloaded, shutting_down, internal —
// plus bound_exceeded, an ok-shaped synth refusal when the exhaustive
// candidate space outgrows its budget) and a human-readable "message".
//
// Ops: ping, synth, synth_sat, eval, paths, metrics, explore, lint, stats,
// sleep, shutdown. The pure ops (synth, synth_sat, eval, paths, metrics,
// explore, lint) are
// deterministic functions of their parameters, so responses are cached
// under jobs::cache_key content addresses — in memory always (a sharded
// map, per-shard locks keyed by the cache-key prefix so hot answers never
// contend on one mutex), and on disk when a cache_dir is configured (warm
// across restarts). A verbatim-line fast path answers repeated identical
// request lines (pure ops without "id"/"deadline_ms") without even parsing
// the JSON; its responses are byte-identical to the computed ones.

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "ftl/jobs/telemetry.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/truth_table.hpp"
#include "ftl/serve/json.hpp"
#include "ftl/serve/stats.hpp"
#include "ftl/util/error.hpp"

namespace ftl::serve {

/// A lattice described by a request object: either spelled out
/// ("rows"/"cols"/"vars"/"cells", with cells like "a", "b'", "0", "1") or
/// named by a target expression ("expr", optionally "vars"), in which case
/// the Altun-Riedel construction supplies the lattice. `target` is set when
/// it came from an expression.
struct LatticeSpec {
  lattice::Lattice lat;
  std::optional<logic::TruthTable> target;
};

/// Parses a lattice spec from a JSON object (shared by the lattice-taking
/// service ops and the ftl_lint --lattice CLI). Throws ftl::Error on a
/// malformed spec.
LatticeSpec lattice_spec_from(const JsonValue& spec);

/// Thrown by request handlers when the request's deadline expires between
/// pipeline stages; mapped to the "deadline_exceeded" protocol error.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& stage)
      : Error("deadline exceeded during " + stage) {}
};

struct ServiceOptions {
  std::size_t workers = 4;       ///< request worker threads (>= 1)
  std::size_t queue_depth = 64;  ///< admitted-but-not-started high-water mark
  std::string cache_dir;         ///< on-disk response cache ("" = memory only)
  bool cache = true;             ///< serve repeated pure ops from cache
  /// NPN lattice-library root for the synth ops ("" = memory-only library).
  /// Unlike the response cache — which only answers byte-identical request
  /// lines — the library answers any request in the same NPN class by
  /// relabeling a stored lattice, so permuted/negated variants of an
  /// already-synthesized function skip the search engines entirely.
  std::string library_dir;
  bool library = true;  ///< consult/populate the lattice library
  jobs::EventSink* access_log = nullptr;  ///< per-request events (not owned)
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();  ///< drains

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Parses and executes one request on the calling thread, bypassing the
  /// admission queue (workers and tests use this). Never throws: protocol
  /// and internal errors come back as error responses.
  std::string handle_now(const std::string& line);

  /// Admission-controlled asynchronous execution. The returned future is
  /// already satisfied (with an "overloaded" or "shutting_down" error
  /// response) when the queue is past its high-water mark or the service is
  /// draining; otherwise the request runs on a worker, with its deadline
  /// measured from this call and re-checked at dequeue.
  std::future<std::string> submit(std::string line);

  /// Callback flavor of submit() for event-loop callers: identical
  /// admission, deadline, and caching semantics, but no future allocation.
  /// `done` is invoked exactly once — synchronously on the calling thread
  /// for protocol errors, admission rejections, and cache hits (the hot
  /// path never hops to the worker pool), or on a pool worker otherwise.
  /// Service::drain() does not return while any `done` is still pending.
  void submit_async(std::string line,
                    std::function<void(std::string&&)> done);

  /// Graceful drain: stop admitting, wait for in-flight requests, flush the
  /// access log. Idempotent.
  void drain();

  bool draining() const;

  /// True once a "shutdown" request has been served; the TCP server polls
  /// this to initiate its own stop.
  bool shutdown_requested() const;

  /// Requests admitted and not yet completed (queued + executing).
  std::size_t in_flight() const;

  StatsRegistry& stats();
  const ServiceOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftl::serve
