#pragma once
// Minimal JSON value model for the serve protocol (the repo deliberately has
// no external JSON dependency). One class covers both directions:
//  - JsonValue::parse() — strict RFC-8259 subset parser with positioned
//    errors and a recursion-depth limit (server input is untrusted);
//  - dump() — canonical single-line rendering: object members keep insertion
//    order, integral numbers print without an exponent, and doubles print
//    with %.17g so values round-trip bit-exactly. Deterministic dumps are
//    what makes "concurrent responses byte-identical to serial" testable.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftl::serve {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default-constructed value is JSON null.
  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue str(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each throws ftl::Error when the kind does not match.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object lookup; nullptr when absent (or when not an object).
  const JsonValue* find(std::string_view key) const;

  /// Typed object lookups with fallbacks. Throw ftl::Error when the key is
  /// present but has the wrong type (silent coercion would hide client bugs).
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

  /// Object member insert-or-replace (keeps first-insertion order). Returns
  /// *this so response construction chains.
  JsonValue& set(std::string key, JsonValue value);

  /// Array append.
  JsonValue& push(JsonValue value);

  /// Canonical single-line rendering (see file comment).
  std::string dump() const;

  /// Parses exactly one JSON value spanning the whole input (trailing
  /// whitespace allowed). Throws ftl::Error with a byte offset on malformed
  /// input or nesting deeper than 64 levels.
  static JsonValue parse(std::string_view text);

  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escaped, quoted JSON string rendering (shared with dump()).
std::string json_quote(std::string_view s);

}  // namespace ftl::serve
