#pragma once
// Concurrent load generator for one or more running serve endpoints: N
// connections each keep up to `pipeline` requests in flight on a single
// socket (batched sends, in-order responses), and the merged per-request
// latencies yield throughput and exact percentiles. With several endpoints
// the request mix is partitioned by consistent hashing so each serve
// process sees a stable slice of the keyspace — the shared-nothing cache
// tier described in DESIGN.md §13. Shared by the ftl_loadgen CLI and the
// serve benchmark.

#include <cstddef>
#include <string>
#include <vector>

#include "ftl/serve/json.hpp"

namespace ftl::serve {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Optional "host:port" list. When non-empty it overrides host/port and
  /// each mix line is routed to ring.node_for(line); every endpoint that
  /// owns at least one line gets at least one connection.
  std::vector<std::string> endpoints;
  std::size_t connections = 4;  ///< concurrent client connections (total)
  std::size_t requests = 1000;  ///< total requests across all connections
  std::size_t pipeline = 1;     ///< max in-flight requests per connection
  std::vector<std::string> mix;  ///< request lines, cycled round-robin
};

struct LoadgenReport {
  std::size_t sent = 0;
  std::size_t ok = 0;      ///< responses with "ok": true
  std::size_t errors = 0;  ///< protocol errors or transport failures
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  /// Server-side cache hit rate over the run, from `stats` snapshots taken
  /// before and after: delta(cache_hits) / delta(cache_hits + cache_misses)
  /// summed across endpoints. -1 when unknown (no cacheable traffic, or a
  /// stats probe failed).
  double cache_hit_rate = -1.0;

  JsonValue to_json() const;
  std::string to_string() const;  ///< human-readable summary block
};

/// Runs the load; throws ftl::Error when options are empty/invalid or no
/// connection can be established.
LoadgenReport run_loadgen(const LoadgenOptions& options);

}  // namespace ftl::serve
