#pragma once
// Concurrent load generator for a running serve endpoint: N connections
// each fire a cycled mix of request lines as fast as responses come back,
// and the merged per-request latencies yield throughput and exact
// percentiles. Shared by the ftl_loadgen CLI and the serve benchmark.

#include <cstddef>
#include <string>
#include <vector>

#include "ftl/serve/json.hpp"

namespace ftl::serve {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t connections = 4;  ///< concurrent client connections
  std::size_t requests = 1000;  ///< total requests across all connections
  std::vector<std::string> mix;  ///< request lines, cycled round-robin
};

struct LoadgenReport {
  std::size_t sent = 0;
  std::size_t ok = 0;      ///< responses with "ok": true
  std::size_t errors = 0;  ///< protocol errors or transport failures
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  JsonValue to_json() const;
  std::string to_string() const;  ///< human-readable summary block
};

/// Runs the load; throws ftl::Error when options are empty/invalid or no
/// connection can be established.
LoadgenReport run_loadgen(const LoadgenOptions& options);

}  // namespace ftl::serve
