#pragma once
// Request statistics for the serve subsystem: per-op outcome counters and
// log-bucketed latency histograms with percentile extraction. One registry
// lives in the Service; every request records (op, outcome, latency,
// cache-hit) exactly once, and the `stats` protocol op renders a snapshot.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "ftl/serve/json.hpp"

namespace ftl::serve {

/// Fixed log-spaced latency histogram over microseconds. Bucket bounds span
/// 1 us .. ~100 s with ~14% resolution, which is plenty for p50/p95/p99 on
/// service latencies; recording is O(log buckets) and lock-free given outer
/// synchronization (StatsRegistry holds the lock).
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(double us);

  std::uint64_t count() const { return count_; }
  double mean_us() const { return count_ > 0 ? sum_us_ / static_cast<double>(count_) : 0.0; }
  double min_us() const { return count_ > 0 ? min_us_ : 0.0; }
  double max_us() const { return max_us_; }

  /// Latency at percentile `p` in (0, 100], linearly interpolated inside
  /// the covering bucket. Returns 0 when nothing was recorded.
  double percentile(double p) const;

 private:
  static constexpr int kBuckets = 56;  // 8 decades x 7 mantissa steps
  static double upper_bound(int bucket);
  static int bucket_for(double us);

  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double min_us_ = 0.0;
  double max_us_ = 0.0;
};

/// Thread-safe registry of per-op request statistics.
class StatsRegistry {
 public:
  /// Outcomes are the protocol status strings: "ok", "bad_request",
  /// "deadline_exceeded", "overloaded", "shutting_down", "internal".
  /// `cache_miss` marks a pure (cacheable) request that was not served from
  /// cache, so hit rate per op is cache_hits / (cache_hits + cache_misses).
  void record(std::string_view op, std::string_view outcome, double latency_us,
              bool cache_hit, bool cache_miss = false);

  /// JSON snapshot keyed by op name (sorted), each entry carrying counts,
  /// outcome breakdown, cache hits, and latency percentiles, plus a "total"
  /// rollup across ops.
  JsonValue snapshot() const;

  std::uint64_t total_requests() const;

 private:
  struct OpStats {
    std::uint64_t requests = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::map<std::string, std::uint64_t> outcomes;
    LatencyHistogram latency;
  };

  static JsonValue render(const OpStats& s);

  mutable std::mutex m_;
  std::map<std::string, OpStats, std::less<>> ops_;
  OpStats total_;
};

}  // namespace ftl::serve
