#include "ftl/serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ftl/bridge/metrics.hpp"
#include "ftl/bridge/variability.hpp"
#include "ftl/check/equivalence.hpp"
#include "ftl/check/lattice.hpp"
#include "ftl/check/lattice_sat.hpp"
#include "ftl/check/netlist.hpp"
#include "ftl/designer/designer.hpp"
#include "ftl/jobs/artifact.hpp"
#include "ftl/jobs/cache.hpp"
#include "ftl/jobs/digest.hpp"
#include "ftl/lattice/connectivity.hpp"
#include "ftl/lattice/function.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/lattice/paths.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/library/store.hpp"
#include "ftl/library/synthesize.hpp"
#include "ftl/logic/expr_parser.hpp"
#include "ftl/sat/solver.hpp"
#include "ftl/serve/json.hpp"
#include "ftl/spice/batch.hpp"
#include "ftl/spice/linear_solver.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Wall-clock budget of one request, measured from its submission. check()
/// is called at dequeue and between pipeline stages (parse -> synthesize ->
/// simulate -> serialize), so an expired request stops at the next stage
/// boundary instead of holding a worker for its full cost.
class Deadline {
 public:
  Deadline() = default;
  Deadline(double budget_ms, Clock::time_point start) {
    if (budget_ms > 0.0) {
      limited_ = true;
      end_ = start + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(budget_ms));
    }
  }

  bool expired() const { return limited_ && Clock::now() >= end_; }

  void check(const char* stage) const {
    if (expired()) throw DeadlineExceeded(stage);
  }

 private:
  bool limited_ = false;
  Clock::time_point end_{};
};

// ---------------------------------------------------------------------------
// Request helpers

double require_number(const JsonValue& req, std::string_view key) {
  const JsonValue* v = req.find(key);
  if (v == nullptr || !v->is_number()) {
    throw Error("field '" + std::string(key) + "' (number) is required");
  }
  return v->as_number();
}

std::string require_string(const JsonValue& req, std::string_view key) {
  const JsonValue* v = req.find(key);
  if (v == nullptr || !v->is_string()) {
    throw Error("field '" + std::string(key) + "' (string) is required");
  }
  return v->as_string();
}

int require_int(const JsonValue& req, std::string_view key, int min_value,
                int max_value) {
  const double raw = require_number(req, key);
  if (raw != std::floor(raw) || raw < min_value || raw > max_value) {
    throw Error("field '" + std::string(key) + "' must be an integer in [" +
                std::to_string(min_value) + ", " + std::to_string(max_value) +
                "]");
  }
  return static_cast<int>(raw);
}

std::vector<std::string> string_array_or(const JsonValue& req,
                                         std::string_view key) {
  const JsonValue* v = req.find(key);
  if (v == nullptr || v->is_null()) return {};
  if (!v->is_array()) {
    throw Error("field '" + std::string(key) + "' must be an array of strings");
  }
  std::vector<std::string> out;
  for (const JsonValue& item : v->items()) {
    if (!item.is_string()) {
      throw Error("field '" + std::string(key) + "' must contain only strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

lattice::CellValue parse_cell(const std::string& token,
                              const std::vector<std::string>& vars) {
  if (token == "0") return lattice::CellValue::zero();
  if (token == "1") return lattice::CellValue::one();
  std::string name = token;
  bool positive = true;
  if (!name.empty() && name.front() == '!') {
    positive = false;
    name.erase(name.begin());
  }
  if (!name.empty() && name.back() == '\'') {
    positive = !positive;
    name.pop_back();
  }
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == name) {
      return lattice::CellValue::of(static_cast<int>(i), positive);
    }
  }
  throw Error("cell '" + token + "' names a variable not in 'vars'");
}

JsonValue lattice_json(const lattice::Lattice& lat) {
  JsonValue out = JsonValue::object();
  out.set("rows", JsonValue::number(lat.rows()));
  out.set("cols", JsonValue::number(lat.cols()));
  out.set("num_vars", JsonValue::number(lat.num_vars()));
  JsonValue vars = JsonValue::array();
  for (const std::string& name : lat.var_names()) vars.push(JsonValue::str(name));
  out.set("vars", std::move(vars));
  JsonValue cells = JsonValue::array();
  for (int r = 0; r < lat.rows(); ++r) {
    for (int c = 0; c < lat.cols(); ++c) {
      cells.push(JsonValue::str(lat.at(r, c).to_string(lat.var_names())));
    }
  }
  out.set("cells", std::move(cells));
  return out;
}

}  // namespace

// Public so ftl_lint --lattice parses mapping files with the exact grammar
// of the lattice-taking ops (declared in service.hpp).
LatticeSpec lattice_spec_from(const JsonValue& req) {
  if (req.find("cells") != nullptr) {
    const int rows = require_int(req, "rows", 1, 16);
    const int cols = require_int(req, "cols", 1, 16);
    std::vector<std::string> vars = string_array_or(req, "vars");
    if (vars.empty() && req.find("vars") != nullptr) {
      throw Error("'vars' must be a non-empty array when 'cells' is given");
    }
    const JsonValue& cells = *req.find("cells");
    if (!cells.is_array() ||
        cells.items().size() != static_cast<std::size_t>(rows * cols)) {
      throw Error("'cells' must be a row-major array of rows*cols strings");
    }
    lattice::Lattice lat(rows, cols, static_cast<int>(vars.size()), vars);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const JsonValue& cell = cells.items()[static_cast<std::size_t>(r * cols + c)];
        if (!cell.is_string()) throw Error("'cells' entries must be strings");
        lat.set(r, c, parse_cell(cell.as_string(), vars));
      }
    }
    return {std::move(lat), std::nullopt};
  }
  if (req.find("expr") != nullptr) {
    const logic::ParsedFunction parsed = logic::parse_expression(
        require_string(req, "expr"), string_array_or(req, "vars"));
    lattice::Lattice lat =
        lattice::altun_riedel_synthesis(parsed.table, parsed.var_names);
    return {std::move(lat), parsed.table};
  }
  throw Error("request needs either 'expr' or 'rows'/'cols'/'vars'/'cells'");
}

namespace {

bridge::MeasureOptions measure_options_from(const JsonValue& req) {
  bridge::MeasureOptions opts;
  const double phase_ns = req.number_or("phase_ns", 40.0);
  const double dt_ns = req.number_or("dt_ns", 0.2);
  if (!(dt_ns > 0.0) || !(phase_ns >= 4.0 * dt_ns) || phase_ns > 1e6) {
    throw Error("'phase_ns'/'dt_ns' must satisfy 0 < dt_ns <= phase_ns/4 <= 250000");
  }
  opts.phase_time = phase_ns * 1e-9;
  opts.dt = dt_ns * 1e-9;
  return opts;
}

JsonValue metrics_json(const bridge::GateMetrics& m) {
  JsonValue out = JsonValue::object();
  out.set("functional", JsonValue::boolean(m.functional));
  out.set("switch_count", JsonValue::number(m.switch_count));
  out.set("output_low_max_v", JsonValue::number(m.output_low_max));
  out.set("output_high_min_v", JsonValue::number(m.output_high_min));
  out.set("static_power_worst_w", JsonValue::number(m.static_power_worst));
  out.set("static_power_mean_w", JsonValue::number(m.static_power_mean));
  out.set("rise_time_s", JsonValue::number(m.rise_time));
  out.set("fall_time_s", JsonValue::number(m.fall_time));
  out.set("propagation_delay_s", JsonValue::number(m.propagation_delay));
  out.set("max_frequency_hz", JsonValue::number(m.max_frequency));
  out.set("energy_per_transition_j", JsonValue::number(m.energy_per_transition));
  return out;
}

// ---------------------------------------------------------------------------
// Handlers. Each returns the response body *without* the echoed id, with
// "op" and "ok" first, so pure-op bodies are cacheable verbatim.

JsonValue body_for(const std::string& op, bool ok = true) {
  JsonValue body = JsonValue::object();
  body.set("op", JsonValue::str(op));
  body.set("ok", JsonValue::boolean(ok));
  return body;
}

JsonValue handle_ping(const JsonValue&, const Deadline&) {
  JsonValue body = body_for("ping");
  body.set("pong", JsonValue::boolean(true));
  return body;
}

/// Shared response annotations for the library-routed synth ops: where the
/// lattice came from ("library" = relabeled from the class store with zero
/// engine work, "engine" = a search ran) and — whenever the target was
/// canonicalized — the NPN class key, so clients can correlate requests
/// that are the same function up to permutation/negation.
void set_library_fields(JsonValue& body, const library::SynthesisResult& r) {
  body.set("source", JsonValue::str(r.from_library ? "library" : "engine"));
  if (r.npn_key != 0) {
    body.set("npn_class", JsonValue::str(jobs::digest_hex(r.npn_key)));
  }
}

JsonValue handle_synth(const JsonValue& req, const Deadline& deadline,
                       library::LatticeLibrary* lib) {
  const logic::ParsedFunction parsed = logic::parse_expression(
      require_string(req, "expr"), string_array_or(req, "vars"));
  const std::string method = req.string_or("method", "auto");
  deadline.check("synthesis");

  using Engine = library::SynthesisRequest::Engine;
  library::SynthesisRequest synth_req;
  synth_req.var_names = parsed.var_names;
  std::optional<std::uint64_t> seed;
  if (method == "auto") {
    synth_req.engine = Engine::kAuto;
  } else if (method == "altun") {
    synth_req.engine = Engine::kAltun;
  } else if (method == "exhaustive" || method == "search") {
    synth_req.engine =
        method == "exhaustive" ? Engine::kExhaustive : Engine::kLocalSearch;
    synth_req.rows = require_int(req, "rows", 1, 8);
    synth_req.cols = require_int(req, "cols", 1, 8);
    synth_req.search.seed =
        static_cast<std::uint64_t>(req.number_or("seed", 1.0));
    seed = synth_req.search.seed;
  } else {
    throw Error("unknown method '" + method +
                "' (expected auto, altun, exhaustive, or search)");
  }

  library::SynthesisResult result;
  try {
    result = library::synthesize(parsed.table, synth_req, lib);
  } catch (const lattice::SearchBoundExceeded& e) {
    // Typed refusal, not a generic bad_request: clients can read the
    // numbers and retarget to the synth_sat op mechanically.
    JsonValue body = body_for("synth", false);
    body.set("error", JsonValue::str("bound_exceeded"));
    body.set("message", JsonValue::str(e.what()));
    body.set("candidates", JsonValue::number(e.candidates()));
    body.set("budget", JsonValue::number(e.budget()));
    return body;
  }
  deadline.check("serialization");

  JsonValue body = body_for("synth");
  body.set("method", JsonValue::str(method));
  if (seed) {
    body.set("seed", JsonValue::number(static_cast<double>(*seed)));
  }
  body.set("found", JsonValue::boolean(result.found));
  set_library_fields(body, result);
  if (result.found) {
    const lattice::Lattice& lat = result.lattice;
    body.set("lattice", lattice_json(lat));
    body.set("switch_count", JsonValue::number(lat.rows() * lat.cols()));
    body.set("paths", JsonValue::number(static_cast<double>(
                          lattice::count_products(lat.rows(), lat.cols()))));
    body.set("realizes", JsonValue::boolean(lattice::realizes(lat, parsed.table)));
  }
  return body;
}

/// CEGAR SAT synthesis as a service op, routed library-first: a class hit
/// answers with a relabeled stored lattice and an all-zero solver report
/// (no CDCL ran), a miss runs synth_sat and offers the result back to the
/// library. Outcomes other than "found" are structured results, not errors
/// — infeasibility is a proof, budget exhaustion an explicit refusal.
JsonValue handle_synth_sat(const JsonValue& req, const Deadline& deadline,
                           library::LatticeLibrary* lib) {
  const logic::ParsedFunction parsed = logic::parse_expression(
      require_string(req, "expr"), string_array_or(req, "vars"));
  library::SynthesisRequest synth_req;
  synth_req.engine = library::SynthesisRequest::Engine::kSat;
  synth_req.rows = require_int(req, "rows", 1, 8);
  synth_req.cols = require_int(req, "cols", 1, 8);
  synth_req.var_names = parsed.var_names;
  synth_req.sat.seed = static_cast<std::uint64_t>(req.number_or("seed", 1.0));
  synth_req.sat.allow_constants = req.bool_or("constants", true);
  const double budget = req.number_or("max_conflicts", 2e6);
  if (!(budget >= 0.0) || budget > 9e18) {
    throw Error("'max_conflicts' must be a number in [0, 9e18]");
  }
  synth_req.sat.max_conflicts = static_cast<std::int64_t>(budget);
  synth_req.sat.certify = req.bool_or("certify", false);
  deadline.check("synthesis");

  const library::SynthesisResult result =
      library::synthesize(parsed.table, synth_req, lib);
  deadline.check("serialization");

  JsonValue body = body_for("synth_sat");
  body.set("found", JsonValue::boolean(result.found));
  set_library_fields(body, result);
  body.set("proven_infeasible", JsonValue::boolean(result.proven_infeasible));
  body.set("budget_exhausted", JsonValue::boolean(result.budget_exhausted));
  // Under "certify", an infeasibility verdict carries its proof status:
  // "checked" when the final UNSAT's DRAT derivation passed the embedded
  // checker, "failed" when it was rejected (treat the verdict as unproven).
  if (synth_req.sat.certify && result.proven_infeasible) {
    const bool valid = result.sat && result.sat->proof_valid;
    body.set("proof", JsonValue::str(valid ? "checked" : "failed"));
  }
  if (result.found) {
    body.set("lattice", lattice_json(result.lattice));
    body.set("switch_count", JsonValue::number(result.lattice.rows() *
                                               result.lattice.cols()));
  }
  // Library hits never touched the solver, so the work report is zeros
  // (clients can read sat-core effort straight off any response).
  const lattice::SatSynthesisResult* ran =
      result.sat ? &*result.sat : nullptr;
  const auto num = [](std::uint64_t v) {
    return JsonValue::number(static_cast<double>(v));
  };
  body.set("cegar_rounds", JsonValue::number(ran ? ran->cegar_rounds : 0));
  body.set("care_minterms", JsonValue::number(ran ? ran->care_minterms : 0));
  body.set("seed", num(ran ? ran->seed : synth_req.sat.seed));
  JsonValue solver = JsonValue::object();
  const sat::SolveStats work = ran ? ran->solver : sat::SolveStats{};
  solver.set("solves", num(work.solves));
  solver.set("conflicts", num(work.conflicts));
  solver.set("decisions", num(work.decisions));
  solver.set("propagations", num(work.propagations));
  solver.set("restarts", num(work.restarts));
  solver.set("learned_clauses", num(work.learned_clauses));
  body.set("solver", std::move(solver));
  return body;
}

JsonValue handle_eval(const JsonValue& req, const Deadline& deadline) {
  LatticeSpec spec = lattice_spec_from(req);
  const lattice::Lattice& lat = spec.lat;
  deadline.check("evaluation");

  JsonValue body = body_for("eval");
  body.set("rows", JsonValue::number(lat.rows()));
  body.set("cols", JsonValue::number(lat.cols()));
  body.set("num_vars", JsonValue::number(lat.num_vars()));

  const JsonValue* assignments = req.find("assignments");
  if (assignments != nullptr) {
    if (!assignments->is_array()) {
      throw Error("'assignments' must be an array of minterm indices");
    }
    const double limit =
        lat.num_vars() >= 63 ? 9e18 : std::ldexp(1.0, lat.num_vars());
    JsonValue outputs = JsonValue::array();
    for (const JsonValue& a : assignments->items()) {
      if (!a.is_number() || a.as_number() != std::floor(a.as_number()) ||
          a.as_number() < 0.0 || a.as_number() >= limit) {
        throw Error("'assignments' entries must be integers in [0, 2^num_vars)");
      }
      outputs.push(JsonValue::number(
          lat.evaluate(static_cast<std::uint64_t>(a.as_number())) ? 1 : 0));
    }
    body.set("outputs", std::move(outputs));
  } else {
    if (lat.num_vars() > 16) {
      throw Error("full truth-table eval needs num_vars <= 16; pass 'assignments'");
    }
    const logic::TruthTable table = lattice::realized_truth_table(lat);
    deadline.check("serialization");
    body.set("minterms", JsonValue::number(static_cast<double>(table.num_minterms())));
    body.set("ones", JsonValue::number(static_cast<double>(table.count_ones())));
    if (lat.num_vars() <= 12) {
      JsonValue on_set = JsonValue::array();
      for (std::uint64_t m = 0; m < table.num_minterms(); ++m) {
        if (table.get(m)) on_set.push(JsonValue::number(static_cast<double>(m)));
      }
      body.set("on_set", std::move(on_set));
    }
  }
  if (req.bool_or("sop", false)) {
    if (lat.cell_count() > 12) {
      throw Error("'sop' rendering is limited to lattices of <= 12 cells");
    }
    deadline.check("sop");
    body.set("sop", JsonValue::str(
                        lattice::realized_sop(lat).to_string(lat.var_names())));
  }
  return body;
}

JsonValue handle_paths(const JsonValue& req, const Deadline& deadline) {
  const int rows = require_int(req, "rows", 1, 12);
  const int cols = require_int(req, "cols", 1, 12);
  const int list_limit = req.find("list_limit") != nullptr
                             ? require_int(req, "list_limit", 0, 10000)
                             : 0;
  deadline.check("enumeration");

  JsonValue body = body_for("paths");
  body.set("rows", JsonValue::number(rows));
  body.set("cols", JsonValue::number(cols));
  body.set("count", JsonValue::number(
                        static_cast<double>(lattice::count_products(rows, cols))));
  if (list_limit > 0) {
    JsonValue paths = JsonValue::array();
    lattice::enumerate_products(
        rows, cols,
        [&](const std::vector<int>& cells) {
          JsonValue path = JsonValue::array();
          for (const int cell : cells) path.push(JsonValue::number(cell));
          paths.push(std::move(path));
        },
        static_cast<std::uint64_t>(list_limit));
    body.set("paths", std::move(paths));
  }
  return body;
}

JsonValue handle_metrics(const JsonValue& req, const Deadline& deadline) {
  LatticeSpec spec = lattice_spec_from(req);
  if (spec.lat.num_vars() > 6) {
    throw Error("metrics characterization needs num_vars <= 6");
  }
  const bridge::MeasureOptions opts = measure_options_from(req);
  deadline.check("target function");
  const logic::TruthTable target =
      spec.target ? *spec.target : lattice::realized_truth_table(spec.lat);
  deadline.check("simulation");
  const bridge::GateMetrics metrics =
      bridge::measure_resistor_gate(spec.lat, target, opts);
  deadline.check("serialization");

  JsonValue body = body_for("metrics");
  body.set("rows", JsonValue::number(spec.lat.rows()));
  body.set("cols", JsonValue::number(spec.lat.cols()));
  body.set("metrics", metrics_json(metrics));
  return body;
}

// sweep_batch: the batched corner/variability engine as a service op — a
// Monte-Carlo yield sweep of the requested lattice through
// bridge::monte_carlo_yield's BatchSolver path. Deterministic for fixed
// parameters at ANY worker count (lanes reduce in trial order; threads
// split the batch, never a trial), so it is a pure, cacheable op; the
// engine's process-wide counters surface in `stats` as batch_core.
JsonValue handle_sweep_batch(const JsonValue& req, const Deadline& deadline) {
  LatticeSpec spec = lattice_spec_from(req);
  if (spec.lat.num_vars() > 6) {
    throw Error("sweep_batch characterization needs num_vars <= 6");
  }
  bridge::VariabilityOptions options;
  options.trials = req.find("trials") != nullptr
                       ? require_int(req, "trials", 1, 4096)
                       : 32;
  options.sigma_vth = req.number_or("sigma_vth", 0.01);
  options.sigma_kp_rel = req.number_or("sigma_kp_rel", 0.05);
  if (options.sigma_vth < 0.0 || options.sigma_kp_rel < 0.0 ||
      options.sigma_vth > 10.0 || options.sigma_kp_rel > 10.0) {
    throw Error("'sigma_vth'/'sigma_kp_rel' must be in [0, 10]");
  }
  options.seed = static_cast<std::uint64_t>(req.number_or("seed", 1.0));
  options.max_threads = req.find("workers") != nullptr
                            ? require_int(req, "workers", 0, 4096)
                            : 0;
  if (const JsonValue* e = req.find("engine")) {
    const std::string name = e->is_string() ? e->as_string() : "";
    if (name == "per_trial") {
      // Differential baseline: same dice, fresh netlist + standalone solve
      // per (trial, code). Bitwise identical to the batched engine.
      options.engine = bridge::VariabilityEngine::kPerTrial;
    } else if (name != "batched") {
      throw Error("'engine' must be 'batched' or 'per_trial'");
    }
  }
  deadline.check("target function");
  const logic::TruthTable target =
      spec.target ? *spec.target : lattice::realized_truth_table(spec.lat);
  deadline.check("simulation");
  const bridge::VariabilityResult result =
      bridge::monte_carlo_yield(spec.lat, target, options);
  deadline.check("serialization");

  JsonValue body = body_for("sweep_batch");
  body.set("rows", JsonValue::number(spec.lat.rows()));
  body.set("cols", JsonValue::number(spec.lat.cols()));
  body.set("trials", JsonValue::number(result.trials));
  body.set("passing", JsonValue::number(result.passing));
  body.set("yield", JsonValue::number(result.yield()));
  body.set("worst_low", JsonValue::number(result.worst_low));
  body.set("worst_high", JsonValue::number(result.worst_high));
  body.set("engine", JsonValue::str(
                         options.engine == bridge::VariabilityEngine::kBatched
                             ? "batched"
                             : "per_trial"));
  return body;
}

JsonValue handle_explore(const JsonValue& req, const Deadline& deadline,
                         library::LatticeLibrary* lib) {
  const logic::ParsedFunction parsed = logic::parse_expression(
      require_string(req, "expr"), string_array_or(req, "vars"));

  designer::DesignOptions options;
  options.try_smaller_lattices = req.bool_or("try_smaller", true);
  options.include_complementary = req.bool_or("complementary", true);
  options.max_search_cells = req.find("max_cells") != nullptr
                                 ? require_int(req, "max_cells", 1, 16)
                                 : options.max_search_cells;
  options.search_seed = static_cast<std::uint64_t>(req.number_or("seed", 1.0));
  options.measure = measure_options_from(req);
  if (lib != nullptr) {
    // Feed the best-known class lattice (relabeled and verified by
    // lookup_only) into the candidate set; the designer re-verifies and
    // measures it like any other single-lattice design.
    const std::vector<std::string> names = parsed.var_names;
    options.extra_candidates =
        [lib, names](const logic::TruthTable& target)
        -> std::vector<std::pair<std::string, lattice::Lattice>> {
      std::optional<lattice::Lattice> hit =
          library::lookup_only(*lib, target, names);
      if (!hit) return {};
      return {{"library", std::move(*hit)}};
    };
  }

  designer::DesignWeights weights;
  if (const JsonValue* w = req.find("weights")) {
    weights.area = w->number_or("area", weights.area);
    weights.delay = w->number_or("delay", weights.delay);
    weights.static_power = w->number_or("power", weights.static_power);
    weights.energy = w->number_or("energy", weights.energy);
  }
  deadline.check("exploration");

  const std::vector<designer::CandidateDesign> candidates =
      designer::explore_designs(parsed.table, parsed.var_names, options);
  deadline.check("serialization");

  JsonValue body = body_for("explore");
  JsonValue list = JsonValue::array();
  for (const designer::CandidateDesign& c : candidates) {
    JsonValue entry = JsonValue::object();
    entry.set("method", JsonValue::str(c.method));
    entry.set("rows", JsonValue::number(c.pulldown.rows()));
    entry.set("cols", JsonValue::number(c.pulldown.cols()));
    entry.set("complementary", JsonValue::boolean(c.is_complementary()));
    entry.set("metrics", metrics_json(c.metrics));
    list.push(std::move(entry));
  }
  body.set("candidates", std::move(list));
  long best = -1;
  try {
    best = static_cast<long>(designer::pick_best(candidates, weights));
  } catch (const Error&) {
    // No functional candidate; best stays -1.
  }
  body.set("best", JsonValue::number(static_cast<double>(best)));
  return body;
}

JsonValue report_json(const check::Report& report) {
  JsonValue out = JsonValue::object();
  out.set("clean", JsonValue::boolean(report.clean()));
  out.set("errors", JsonValue::number(report.errors()));
  out.set("warnings", JsonValue::number(report.warnings()));
  out.set("notes", JsonValue::number(report.notes()));
  JsonValue list = JsonValue::array();
  for (const check::Diagnostic& d : report.diagnostics()) {
    JsonValue entry = JsonValue::object();
    entry.set("rule", JsonValue::str(d.rule));
    entry.set("severity", JsonValue::str(check::severity_name(d.severity)));
    entry.set("object", JsonValue::str(d.object));
    entry.set("message", JsonValue::str(d.message));
    if (d.loc.valid()) {
      entry.set("line", JsonValue::number(d.loc.line));
      entry.set("column", JsonValue::number(d.loc.column));
    }
    list.push(std::move(entry));
  }
  out.set("diagnostics", std::move(list));
  return out;
}

/// Static diagnostics as a service op: a "netlist" string runs the netlist
/// passes; a lattice spec ("cells" or "expr") runs the lattice passes plus
/// — when a target function is known — BDD equivalence. Pure and cacheable
/// like the other deterministic ops.
JsonValue handle_lint(const JsonValue& req, const Deadline& deadline) {
  check::Report report;
  const bool certify = req.bool_or("certify", false);
  bool certified_lint = false;
  if (const JsonValue* deck = req.find("netlist")) {
    if (!deck->is_string()) throw Error("'netlist' must be a string");
    deadline.check("lint");
    report = check::lint_netlist(deck->as_string()).report;
  } else {
    LatticeSpec spec = lattice_spec_from(req);
    deadline.check("lint");
    report = check::check_lattice(spec.lat);
    if (certify) {
      certified_lint = true;
      check::LatticeSatAuditOptions audit;
      audit.certify = true;
      report.merge(check::audit_lattice_sat(spec.lat, audit).report);
    }
    std::optional<logic::TruthTable> target = spec.target;
    if (const JsonValue* t = req.find("target")) {
      if (!t->is_string()) {
        throw Error("'target' must be an expression string");
      }
      target =
          logic::parse_expression(t->as_string(), spec.lat.var_names()).table;
    }
    if (target) {
      deadline.check("equivalence");
      check::EquivalenceOptions equiv;
      const std::string backend = req.string_or("equiv", "auto");
      if (backend == "bdd") {
        equiv.backend = check::EquivalenceOptions::Backend::kBdd;
      } else if (backend == "sat") {
        equiv.backend = check::EquivalenceOptions::Backend::kSat;
      } else if (backend != "auto") {
        throw Error("unknown equiv backend '" + backend +
                    "' (expected auto, bdd, or sat)");
      }
      equiv.certify = certify;
      report.merge(check::check_equivalence(spec.lat, *target, equiv));
    }
  }
  deadline.check("serialization");
  // "ok" means the lint ran, not that the subject is clean — findings live
  // in report.clean/errors/warnings.
  JsonValue body = body_for("lint");
  body.set("report", report_json(report));
  // Certified lattice lints state the proof status: every UNSAT verdict
  // passed the embedded DRAT checker ("checked") or at least one was
  // rejected ("failed" — the report then carries FTL-E003).
  if (certified_lint) {
    bool failed = false;
    for (const check::Diagnostic& d : report.diagnostics()) {
      if (d.rule == "FTL-E003") failed = true;
    }
    body.set("proof", JsonValue::str(failed ? "failed" : "checked"));
  }
  return body;
}

JsonValue handle_sleep(const JsonValue& req, const Deadline& deadline) {
  const double ms = std::clamp(req.number_or("ms", 0.0), 0.0, 10000.0);
  const Clock::time_point end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(ms));
  // Sleep in slices so a mid-request deadline fires promptly.
  while (Clock::now() < end) {
    deadline.check("sleep");
    const auto remaining = end - Clock::now();
    std::this_thread::sleep_for(
        std::min<Clock::duration>(remaining, std::chrono::milliseconds(5)));
  }
  deadline.check("sleep");
  JsonValue body = body_for("sleep");
  body.set("slept_ms", JsonValue::number(ms));
  return body;
}

bool is_pure_op(const std::string& op) {
  return op == "synth" || op == "synth_sat" || op == "eval" ||
         op == "paths" || op == "metrics" || op == "sweep_batch" ||
         op == "explore" || op == "lint";
}

/// Canonical parameter rendering for the cache key: the request object with
/// the volatile fields (id, deadline_ms) stripped, dumped in member order.
std::string canonical_params(const JsonValue& req) {
  JsonValue canon = JsonValue::object();
  for (const auto& [key, value] : req.members()) {
    if (key == "id" || key == "deadline_ms") continue;
    canon.set(key, value);
  }
  return canon.dump();
}

std::string make_error_body(const std::string& op, const std::string& code,
                            const std::string& message) {
  JsonValue body = body_for(op.empty() ? "?" : op, false);
  body.set("error", JsonValue::str(code));
  body.set("message", JsonValue::str(message));
  return body.dump();
}

/// Prefixes the echoed id onto a cached/computed body ("{...}" ->
/// "{"id":...,...}") without reparsing it.
std::string splice_id(const JsonValue* id, const std::string& body) {
  if (id == nullptr) return body;
  std::string out = "{\"id\":" + id->dump() + ",";
  out += std::string_view(body).substr(1);
  return out;
}

std::uint64_t thread_hash() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

// ---------------------------------------------------------------------------

struct Service::Impl {
  explicit Impl(ServiceOptions opts_in)
      : opts(std::move(opts_in)),
        // ThreadPool counts the caller as a worker; +1 yields `workers`
        // dedicated background threads for submitted requests.
        pool(std::max<std::size_t>(opts.workers, 1) + 1),
        t0(Clock::now()) {
    if (!opts.cache_dir.empty()) {
      disk = std::make_unique<jobs::ResultCache>(opts.cache_dir);
    }
    if (opts.library) {
      lib = opts.library_dir.empty()
                ? std::make_unique<library::LatticeLibrary>()
                : std::make_unique<library::LatticeLibrary>(opts.library_dir);
    }
  }

  struct Executed {
    std::string response;   ///< full response line (id spliced in)
    std::string op = "?";   ///< "?" when the request never named one
    std::string status;    ///< protocol outcome string
    bool cache_hit = false;
    std::uint64_t key = 0;  ///< cache key; 0 for impure ops
    /// True when the raw request line may enter the verbatim-line cache: a
    /// pure op that succeeded and carried neither "id" nor "deadline_ms"
    /// (so the full response equals the cacheable body byte for byte).
    bool line_cacheable = false;
  };

  /// Cache-core counters, surfaced by the `stats` op (relaxed atomics in
  /// the style of lattice::eval_counters). `memory_misses` counts sharded
  /// in-memory lookups that missed (a computed request probes twice: once
  /// on the submit fast path, once at execute).
  struct CacheCounters {
    std::atomic<std::uint64_t> memory_hits{0};
    std::atomic<std::uint64_t> memory_misses{0};
    std::atomic<std::uint64_t> line_hits{0};
    std::atomic<std::uint64_t> disk_hits{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> shard_contention{0};
  };

  /// Runs one parsed request. Never throws.
  Executed execute(const JsonValue& req, const Deadline& deadline) {
    Executed out;
    const JsonValue* id = req.find("id");
    const bool plain =
        id == nullptr && req.find("deadline_ms") == nullptr;
    try {
      out.op = require_string(req, "op");
      std::uint64_t key = 0;
      if (opts.cache && is_pure_op(out.op)) {
        key = jobs::cache_key(out.op, jobs::fnv1a64(canonical_params(req)), {});
        out.key = key;
        if (std::optional<std::string> body = cache_load(out.op, key)) {
          out.cache_hit = true;
          out.status = "ok";
          out.line_cacheable = plain;
          out.response = splice_id(id, *body);
          return out;
        }
      }
      const std::string body = dispatch(out.op, req, deadline).dump();
      if (key != 0) cache_store(out.op, key, body);
      out.status = "ok";
      out.line_cacheable = key != 0 && plain;
      out.response = splice_id(id, body);
    } catch (const DeadlineExceeded& e) {
      out.status = "deadline_exceeded";
      out.response = splice_id(id, make_error_body(out.op, out.status, e.what()));
    } catch (const Error& e) {
      out.status = "bad_request";
      out.response = splice_id(id, make_error_body(out.op, out.status, e.what()));
    } catch (const std::exception& e) {
      out.status = "internal";
      out.response = splice_id(id, make_error_body(out.op, out.status, e.what()));
    }
    return out;
  }

  JsonValue dispatch(const std::string& op, const JsonValue& req,
                     const Deadline& deadline) {
    if (op == "ping") return handle_ping(req, deadline);
    if (op == "synth") return handle_synth(req, deadline, lib.get());
    if (op == "synth_sat") return handle_synth_sat(req, deadline, lib.get());
    if (op == "eval") return handle_eval(req, deadline);
    if (op == "paths") return handle_paths(req, deadline);
    if (op == "metrics") return handle_metrics(req, deadline);
    if (op == "sweep_batch") return handle_sweep_batch(req, deadline);
    if (op == "explore") return handle_explore(req, deadline, lib.get());
    if (op == "lint") return handle_lint(req, deadline);
    if (op == "sleep") return handle_sleep(req, deadline);
    if (op == "stats") return handle_stats();
    if (op == "shutdown") {
      shutdown.store(true);
      JsonValue body = body_for("shutdown");
      body.set("draining", JsonValue::boolean(true));
      return body;
    }
    throw Error("unknown op '" + op +
                "' (expected ping, synth, synth_sat, eval, paths, metrics, "
                "sweep_batch, explore, lint, stats, sleep, or shutdown)");
  }

  JsonValue handle_stats() {
    JsonValue body = body_for("stats");
    body.set("stats", stats.snapshot());
    JsonValue svc = JsonValue::object();
    svc.set("workers", JsonValue::number(static_cast<double>(opts.workers)));
    svc.set("queue_depth_limit",
            JsonValue::number(static_cast<double>(opts.queue_depth)));
    svc.set("in_flight", JsonValue::number(static_cast<double>(inflight.load())));
    svc.set("pending", JsonValue::number(static_cast<double>(pending.load())));
    svc.set("pool_queue",
            JsonValue::number(static_cast<double>(pool.queue_depth())));
    svc.set("pool_active",
            JsonValue::number(static_cast<double>(pool.active_tasks())));
    svc.set("draining", JsonValue::boolean(draining.load()));
    body.set("service", std::move(svc));
    // Evaluation-core counters (process-wide, monotonic): how many input
    // assignments the lattice kernels have evaluated, in how many bitsliced
    // blocks, and how the connectivity-LUT memo is doing. They live in the
    // uncached `stats` op on purpose — the `metrics` op is cached with a
    // cached==computed byte-equality guarantee that volatile counters would
    // break.
    const lattice::EvalCounters ec = lattice::eval_counters();
    JsonValue eval_core = JsonValue::object();
    eval_core.set("assignments",
                  JsonValue::number(static_cast<double>(ec.assignments)));
    eval_core.set("blocks", JsonValue::number(static_cast<double>(ec.blocks)));
    eval_core.set("lut_hits",
                  JsonValue::number(static_cast<double>(ec.lut_hits)));
    eval_core.set("lut_builds",
                  JsonValue::number(static_cast<double>(ec.lut_builds)));
    body.set("eval_core", std::move(eval_core));
    // Response-cache counters (per-service, relaxed atomics): sharded
    // in-memory hits/misses, verbatim-line fast-path hits, disk promotions,
    // stores, and how often two threads actually contended on one shard
    // lock. Uncached for the same reason as eval_core.
    JsonValue cache_core = JsonValue::object();
    const auto get = [](const std::atomic<std::uint64_t>& c) {
      return JsonValue::number(
          static_cast<double>(c.load(std::memory_order_relaxed)));
    };
    cache_core.set("memory_hits", get(cache_counters.memory_hits));
    cache_core.set("memory_misses", get(cache_counters.memory_misses));
    cache_core.set("line_hits", get(cache_counters.line_hits));
    cache_core.set("disk_hits", get(cache_counters.disk_hits));
    cache_core.set("stores", get(cache_counters.stores));
    cache_core.set("shard_contention", get(cache_counters.shard_contention));
    cache_core.set("shards",
                   JsonValue::number(static_cast<double>(kCacheShards)));
    body.set("cache_core", std::move(cache_core));
    // SAT-core counters (process-wide, monotonic): CDCL work done by the
    // synth_sat op and the SAT equivalence backend, flushed once per
    // solve() call. Same volatility argument as eval_core.
    const sat::SatCounters sc = sat::sat_counters();
    JsonValue sat_core = JsonValue::object();
    const auto get_u64 = [](std::uint64_t v) {
      return JsonValue::number(static_cast<double>(v));
    };
    sat_core.set("solves", get_u64(sc.solves));
    sat_core.set("sat", get_u64(sc.sat));
    sat_core.set("unsat", get_u64(sc.unsat));
    sat_core.set("conflicts", get_u64(sc.conflicts));
    sat_core.set("decisions", get_u64(sc.decisions));
    sat_core.set("propagations", get_u64(sc.propagations));
    sat_core.set("restarts", get_u64(sc.restarts));
    sat_core.set("learned_clauses", get_u64(sc.learned_clauses));
    sat_core.set("minimized_literals", get_u64(sc.minimized_literals));
    sat_core.set("cegar_rounds", get_u64(sc.cegar_rounds));
    sat_core.set("proof_clauses", get_u64(sc.proof_clauses));
    sat_core.set("proof_checks", get_u64(sc.proof_checks));
    sat_core.set("proof_failures", get_u64(sc.proof_failures));
    sat_core.set("proof_check_us", get_u64(sc.proof_check_us));
    body.set("sat_core", std::move(sat_core));
    // SPICE-core counters (process-wide, monotonic): classic per-circuit
    // Newton/LU pipeline work — how often the sparse LU got away with a
    // numeric-only refactor vs a full factorization, and how often sparse
    // pivoting degraded to the dense fallback. Driven by the metrics op.
    const spice::SpiceCounters spc = spice::spice_counters();
    JsonValue spice_core = JsonValue::object();
    spice_core.set("newton_iterations", get_u64(spc.newton_iterations));
    spice_core.set("factors", get_u64(spc.factors));
    spice_core.set("refactors", get_u64(spc.refactors));
    spice_core.set("dense_fallbacks", get_u64(spc.dense_fallbacks));
    spice_core.set("dense_solves", get_u64(spc.dense_solves));
    body.set("spice_core", std::move(spice_core));
    // Batched-corner engine counters (process-wide, monotonic), flushed
    // once per BatchSolver::solve. symbolic_reuses / (symbolic_factors +
    // symbolic_reuses) is the headline amortization ratio; lane_fallbacks
    // counts corners whose pivot order drifted off the shared analysis.
    // Driven by the sweep_batch and metrics ops.
    const spice::BatchCounters bc = spice::batch_counters();
    JsonValue batch_core = JsonValue::object();
    batch_core.set("batches", get_u64(bc.batches));
    batch_core.set("lanes", get_u64(bc.lanes));
    batch_core.set("symbolic_factors", get_u64(bc.symbolic_factors));
    batch_core.set("symbolic_reuses", get_u64(bc.symbolic_reuses));
    batch_core.set("numeric_refactors", get_u64(bc.numeric_refactors));
    batch_core.set("lane_fallbacks", get_u64(bc.lane_fallbacks));
    batch_core.set("newton_iterations", get_u64(bc.newton_iterations));
    body.set("batch_core", std::move(batch_core));
    // Lattice-library counters (per-service, relaxed atomics): how the NPN
    // class store is doing. class_hits vs misses is the headline ratio —
    // every hit is a synth request answered with zero engine work (clients
    // can cross-check: a hit moves no sat_core or eval-search counters).
    JsonValue library_core = JsonValue::object();
    library_core.set("enabled", JsonValue::boolean(lib != nullptr));
    if (lib) {
      const library::LibraryStats ls = lib->stats();
      library_core.set("classes", get_u64(ls.classes));
      library_core.set("entries", get_u64(ls.entries));
      library_core.set("lookups", get_u64(ls.lookups));
      library_core.set("class_hits", get_u64(ls.class_hits));
      library_core.set("misses", get_u64(ls.misses));
      library_core.set("unapplies", get_u64(ls.unapplies));
      library_core.set("output_inversions", get_u64(ls.output_inversions));
      library_core.set("verify_rejects", get_u64(ls.verify_rejects));
      library_core.set("populates", get_u64(ls.populates));
      library_core.set("improvements", get_u64(ls.improvements));
      library_core.set("disk_loads", get_u64(ls.disk_loads));
      library_core.set("disk_stores", get_u64(ls.disk_stores));
    }
    body.set("library_core", std::move(library_core));
    return body;
  }

  // Artifact notes must stay comma/newline-free (their serialization is
  // CSV), so response bodies are percent-encoded on the way to disk.
  static std::string encode_note(const std::string& body) {
    std::string out;
    out.reserve(body.size());
    for (const char c : body) {
      switch (c) {
        case '%': out += "%25"; break;
        case ',': out += "%2C"; break;
        case '\n': out += "%0A"; break;
        case '\r': out += "%0D"; break;
        default: out += c;
      }
    }
    return out;
  }

  static std::string decode_note(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '%' && i + 2 < text.size()) {
        const std::string hex = text.substr(i + 1, 2);
        if (hex == "25") { out += '%'; i += 2; continue; }
        if (hex == "2C") { out += ','; i += 2; continue; }
        if (hex == "0A") { out += '\n'; i += 2; continue; }
        if (hex == "0D") { out += '\r'; i += 2; continue; }
      }
      out += text[i];
    }
    return out;
  }

  /// Shard selection: the top bits of the mixed jobs::cache_key (or line
  /// hash) prefix pick one of kCacheShards per-shard locks, so concurrent
  /// hot lookups distribute instead of serializing on one mutex. The mix64
  /// matters: raw FNV-1a keys keep their entropy in the low bits, and the
  /// unmixed prefix would fold most keys into one or two shards.
  static std::size_t shard_of(std::uint64_t key) {
    return static_cast<std::size_t>(jobs::mix64(key) >> 60) &
           (kCacheShards - 1);
  }

  /// Locks a shard, counting the acquisitions that actually contended.
  std::unique_lock<std::mutex> shard_lock(std::mutex& m) {
    std::unique_lock<std::mutex> lock(m, std::try_to_lock);
    if (!lock.owns_lock()) {
      cache_counters.shard_contention.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    return lock;
  }

  std::optional<std::string> cache_load(const std::string& op,
                                        std::uint64_t key) {
    MemoShard& shard = memo_shards[shard_of(key)];
    {
      auto lock = shard_lock(shard.m);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        cache_counters.memory_hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    cache_counters.memory_misses.fetch_add(1, std::memory_order_relaxed);
    if (disk) {
      if (std::optional<jobs::Artifact> art = disk->load(op, key)) {
        const auto it = art->notes.find("response");
        if (it != art->notes.end()) {
          std::string body = decode_note(it->second);
          cache_counters.disk_hits.fetch_add(1, std::memory_order_relaxed);
          auto lock = shard_lock(shard.m);
          shard.map.emplace(key, body);
          return body;
        }
      }
    }
    return std::nullopt;
  }

  void cache_store(const std::string& op, std::uint64_t key,
                   const std::string& body) {
    MemoShard& shard = memo_shards[shard_of(key)];
    {
      auto lock = shard_lock(shard.m);
      shard.map.emplace(key, body);
    }
    cache_counters.stores.fetch_add(1, std::memory_order_relaxed);
    if (disk) {
      try {
        jobs::Artifact art;
        art.notes["response"] = encode_note(body);
        disk->store(op, key, art);
      } catch (const std::exception&) {
        // A full or read-only disk must not fail the request; the response
        // simply is not warm across restarts.
      }
    }
  }

  /// Verbatim-line fast path: repeated identical pure-op lines (no "id",
  /// no "deadline_ms") answer without parsing JSON or hashing canonical
  /// parameters. Entries store the full line for an exact compare, so hash
  /// collisions and near-miss lines fall through to the canonical path.
  struct LineHit {
    std::string op;
    std::string response;
    std::uint64_t key;
  };

  std::optional<LineHit> line_load(const std::string& line) {
    const std::uint64_t h = jobs::fnv1a64(line);
    LineShard& shard = line_shards[shard_of(h)];
    auto lock = shard_lock(shard.m);
    const auto it = shard.map.find(h);
    if (it == shard.map.end() || it->second.line != line) return std::nullopt;
    cache_counters.line_hits.fetch_add(1, std::memory_order_relaxed);
    return LineHit{it->second.op, it->second.response, it->second.key};
  }

  void line_store(const std::string& line, const Executed& done) {
    const std::uint64_t h = jobs::fnv1a64(line);
    LineShard& shard = line_shards[shard_of(h)];
    auto lock = shard_lock(shard.m);
    shard.map.emplace(
        h, LineEntry{line, done.op, done.response, done.key});
  }

  void finish(const Executed& done, Clock::time_point t_start) {
    const double wall_ms = ms_between(t_start, Clock::now());
    stats.record(done.op, done.status, wall_ms * 1000.0, done.cache_hit,
                 done.key != 0 && !done.cache_hit);
    if (opts.access_log != nullptr) {
      jobs::Event ev;
      ev.type = "request";
      ev.job = done.op;
      ev.detail = done.status;
      ev.t_ms = ms_between(t0, t_start);
      ev.wall_ms = wall_ms;
      ev.thread = thread_hash();
      if (done.key != 0) ev.cache_key = jobs::digest_hex(done.key);
      if (done.cache_hit) ev.counters["cache_hit"] = 1.0;
      opts.access_log->emit(ev);
    }
  }

  ServiceOptions opts;
  util::ThreadPool pool;
  std::unique_ptr<jobs::ResultCache> disk;
  std::unique_ptr<library::LatticeLibrary> lib;  ///< null when disabled

  static constexpr std::size_t kCacheShards = 16;  // power of two
  struct MemoShard {
    std::mutex m;
    std::unordered_map<std::uint64_t, std::string> map;
  };
  struct LineEntry {
    std::string line;
    std::string op;
    std::string response;
    std::uint64_t key;
  };
  struct LineShard {
    std::mutex m;
    std::unordered_map<std::uint64_t, LineEntry> map;
  };
  MemoShard memo_shards[kCacheShards];
  LineShard line_shards[kCacheShards];
  CacheCounters cache_counters;

  StatsRegistry stats;
  std::atomic<bool> draining{false};
  std::atomic<bool> shutdown{false};
  std::atomic<std::size_t> pending{0};   // admitted, not yet started
  std::atomic<std::size_t> inflight{0};  // admitted, not yet completed
  std::mutex drain_m;
  std::condition_variable drain_cv;
  Clock::time_point t0;
};

Service::Service(ServiceOptions options) : impl_(new Impl(std::move(options))) {}

Service::~Service() { drain(); }

std::string Service::handle_now(const std::string& line) {
  const Clock::time_point t_start = Clock::now();
  // Verbatim-line fast path: an identical pure-op line answers with the
  // exact previously computed bytes, skipping the JSON parse entirely.
  if (impl_->opts.cache) {
    if (std::optional<Impl::LineHit> hit = impl_->line_load(line)) {
      Impl::Executed done;
      done.response = std::move(hit->response);
      done.op = std::move(hit->op);
      done.status = "ok";
      done.cache_hit = true;
      done.key = hit->key;
      impl_->finish(done, t_start);
      return done.response;
    }
  }
  JsonValue req;
  try {
    req = JsonValue::parse(line);
    if (!req.is_object()) throw Error("request must be a JSON object");
  } catch (const std::exception& e) {
    Impl::Executed done;
    done.response = make_error_body("?", "bad_request", e.what());
    done.status = "bad_request";
    impl_->finish(done, t_start);
    return done.response;
  }
  Deadline deadline;
  Impl::Executed done;
  try {
    deadline = Deadline(req.number_or("deadline_ms", 0.0), t_start);
  } catch (const Error& e) {
    done.response = splice_id(
        req.find("id"),
        make_error_body(req.string_or("op", "?"), "bad_request", e.what()));
    done.status = "bad_request";
    impl_->finish(done, t_start);
    return done.response;
  }
  done = impl_->execute(req, deadline);
  if (impl_->opts.cache && done.line_cacheable) impl_->line_store(line, done);
  impl_->finish(done, t_start);
  return done.response;
}

std::future<std::string> Service::submit(std::string line) {
  // submit() is a thin future adapter over submit_async: rejections and
  // cache hits complete the promise before this returns, so the future is
  // already satisfied in exactly the cases it used to be.
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  submit_async(std::move(line), [promise](std::string&& response) {
    promise->set_value(std::move(response));
  });
  return future;
}

void Service::submit_async(std::string line,
                           std::function<void(std::string&&)> done) {
  Impl& impl = *impl_;
  const Clock::time_point t_submit = Clock::now();

  // Verbatim-line fast path (skipped while draining so the shutting_down
  // contract holds): no parse, no admission, no pool hop.
  if (impl.opts.cache && !impl.draining.load(std::memory_order_relaxed)) {
    if (std::optional<Impl::LineHit> hit = impl.line_load(line)) {
      Impl::Executed hot;
      hot.response = std::move(hit->response);
      hot.op = std::move(hit->op);
      hot.status = "ok";
      hot.cache_hit = true;
      hot.key = hit->key;
      impl.finish(hot, t_submit);
      done(std::move(hot.response));
      return;
    }
  }

  // Parse on the caller so malformed input and rejections answer instantly
  // and the deadline can be anchored at submission.
  std::shared_ptr<JsonValue> req;
  std::string op = "?";
  const JsonValue* id = nullptr;
  Deadline deadline;
  try {
    req = std::make_shared<JsonValue>(JsonValue::parse(line));
    if (!req->is_object()) throw Error("request must be a JSON object");
    op = req->string_or("op", "?");
    id = req->find("id");
    deadline = Deadline(req->number_or("deadline_ms", 0.0), t_submit);
  } catch (const std::exception& e) {
    Impl::Executed bad;
    bad.response = splice_id(id, make_error_body(op, "bad_request", e.what()));
    bad.op = op;
    bad.status = "bad_request";
    impl.finish(bad, t_submit);
    done(std::move(bad.response));
    return;
  }

  // Canonically cached pure ops also answer synchronously: the hot path
  // costs one sharded lookup and never contends for a worker. The deadline
  // still gets its "at dequeue" check (dequeue is immediate here).
  if (impl.opts.cache && !impl.draining.load(std::memory_order_relaxed) &&
      is_pure_op(op)) {
    const std::uint64_t key =
        jobs::cache_key(op, jobs::fnv1a64(canonical_params(*req)), {});
    if (std::optional<std::string> body = impl.cache_load(op, key)) {
      Impl::Executed hot;
      hot.op = op;
      hot.key = key;
      if (deadline.expired()) {
        hot.status = "deadline_exceeded";
        hot.response = splice_id(
            id, make_error_body(op, hot.status, "deadline expired while queued"));
      } else {
        hot.status = "ok";
        hot.cache_hit = true;
        hot.line_cacheable =
            id == nullptr && req->find("deadline_ms") == nullptr;
        hot.response = splice_id(id, *body);
        if (hot.line_cacheable) impl.line_store(line, hot);
      }
      impl.finish(hot, t_submit);
      done(std::move(hot.response));
      return;
    }
  }

  // Admission: count ourselves in-flight first so a drain that observes the
  // flag after our check also observes the increment and waits for us.
  impl.inflight.fetch_add(1);
  const std::size_t queued = impl.pending.fetch_add(1);
  const auto reject = [&](const char* code, const char* message) {
    impl.pending.fetch_sub(1);
    {
      // Notify under the lock, same as the worker path: the condvar must
      // not be signalled after drain() has been allowed to return.
      std::lock_guard<std::mutex> lock(impl.drain_m);
      impl.inflight.fetch_sub(1);
      impl.drain_cv.notify_all();
    }
    Impl::Executed out;
    out.response = splice_id(id, make_error_body(op, code, message));
    out.op = op;
    out.status = code;
    impl.finish(out, t_submit);
    done(std::move(out.response));
  };
  if (impl.draining.load()) {
    reject("shutting_down", "service is draining; request not admitted");
    return;
  }
  if (queued >= impl.opts.queue_depth) {
    reject("overloaded", "admission queue is full; retry later");
    return;
  }

  impl.pool.submit([this, req = std::move(req), line = std::move(line),
                    done = std::move(done), t_submit, deadline]() mutable {
    Impl& im = *impl_;
    im.pending.fetch_sub(1);
    Impl::Executed out;
    // Deadline check at dequeue: a request that waited out its budget in
    // the queue is answered without occupying the worker.
    if (deadline.expired()) {
      out.response = splice_id(req->find("id"),
                               make_error_body(req->string_or("op", "?"),
                                               "deadline_exceeded",
                                               "deadline expired while queued"));
      out.op = req->string_or("op", "?");
      out.status = "deadline_exceeded";
    } else {
      out = im.execute(*req, deadline);
      if (im.opts.cache && out.line_cacheable) im.line_store(line, out);
    }
    im.finish(out, t_submit);
    // The callback runs before the in-flight count drops so drain() cannot
    // return while a completion is still being delivered.
    done(std::move(out.response));
    {
      // Notify while holding the lock: drain()'s waiter cannot re-acquire
      // drain_m (and so cannot return and let ~Impl destroy the condvar)
      // until this thread is fully done signalling.
      std::lock_guard<std::mutex> lock(im.drain_m);
      im.inflight.fetch_sub(1);
      im.drain_cv.notify_all();
    }
  });
}

void Service::drain() {
  Impl& impl = *impl_;
  impl.draining.store(true);
  std::unique_lock<std::mutex> lock(impl.drain_m);
  impl.drain_cv.wait(lock, [&] { return impl.inflight.load() == 0; });
}

bool Service::draining() const { return impl_->draining.load(); }

bool Service::shutdown_requested() const { return impl_->shutdown.load(); }

std::size_t Service::in_flight() const { return impl_->inflight.load(); }

StatsRegistry& Service::stats() { return impl_->stats; }

const ServiceOptions& Service::options() const { return impl_->opts; }

}  // namespace ftl::serve
