#pragma once
// Minimal blocking client for the serve protocol: one TCP connection,
// JSON-lines request/response exchanges. call()/call_line() are the classic
// one-in-one-out round trip; send_lines()/recv_line() split the two halves
// so pipelined callers can keep many requests in flight on one connection
// (the server answers in request order). Used by ftl_loadgen, the tests,
// and anyone scripting against ftl_serve from C++.

#include <cstddef>
#include <string>
#include <vector>

#include "ftl/serve/json.hpp"

namespace ftl::serve {

class Client {
 public:
  /// Connects to host:port (numeric IPv4 or a resolvable name); throws
  /// ftl::Error on failure.
  Client(const std::string& host, int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// Sends one request object and blocks for its response line.
  JsonValue call(const JsonValue& request);

  /// Raw variant: sends `line` (newline appended) and returns the response
  /// line without its newline. Throws ftl::Error when the server closes the
  /// connection mid-exchange.
  std::string call_line(const std::string& line);

  /// Pipelining: sends `lines` (newlines appended) back-to-back in a single
  /// send(2). Pair with one recv_line() per request; the server guarantees
  /// responses come back in request order.
  void send_lines(const std::vector<std::string>& lines);

  /// Blocks for the next response line (without its newline). Throws
  /// ftl::Error when the server closes the connection first.
  std::string recv_line();

  /// Shrinks the socket receive buffer (SO_RCVBUF), e.g. to model a slow
  /// consumer that forces the server through its partial-write path.
  void set_receive_buffer(int bytes);

 private:
  int fd_ = -1;
  std::string rxbuf_;
};

}  // namespace ftl::serve
