#pragma once
// Minimal blocking client for the serve protocol: one TCP connection, one
// JSON-lines request/response exchange per call. Used by ftl_loadgen, the
// tests, and anyone scripting against ftl_serve from C++.

#include <string>

#include "ftl/serve/json.hpp"

namespace ftl::serve {

class Client {
 public:
  /// Connects to host:port (numeric IPv4 or a resolvable name); throws
  /// ftl::Error on failure.
  Client(const std::string& host, int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// Sends one request object and blocks for its response line.
  JsonValue call(const JsonValue& request);

  /// Raw variant: sends `line` (newline appended) and returns the response
  /// line without its newline. Throws ftl::Error when the server closes the
  /// connection mid-exchange.
  std::string call_line(const std::string& line);

 private:
  int fd_ = -1;
  std::string rxbuf_;
};

}  // namespace ftl::serve
