#include "ftl/serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ftl::serve {

namespace {

// Mantissa steps per decade; ~14% worst-case bucket width.
constexpr double kMantissa[7] = {1.0, 1.5, 2.0, 3.0, 4.0, 5.5, 7.5};
constexpr int kSteps = 7;

}  // namespace

LatencyHistogram::LatencyHistogram() = default;

double LatencyHistogram::upper_bound(int bucket) {
  const int decade = bucket / kSteps;
  const int step = bucket % kSteps;
  const double next =
      step + 1 < kSteps ? kMantissa[step + 1] : 10.0;  // end of this step
  return next * std::pow(10.0, decade);
}

int LatencyHistogram::bucket_for(double us) {
  if (!(us > 0.0)) return 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (us <= upper_bound(b)) return b;
  }
  return kBuckets - 1;
}

void LatencyHistogram::record(double us) {
  if (us < 0.0 || !std::isfinite(us)) us = 0.0;
  ++counts_[bucket_for(us)];
  if (count_ == 0 || us < min_us_) min_us_ = us;
  max_us_ = std::max(max_us_, us);
  sum_us_ += us;
  ++count_;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank over the cumulative bucket counts, then linear
  // interpolation between the bucket's bounds for a smoother estimate.
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) >= rank) {
      const double lo = b > 0 ? upper_bound(b - 1) : 0.0;
      const double hi = std::min(upper_bound(b), max_us_);
      const double inside =
          (rank - static_cast<double>(before)) / static_cast<double>(counts_[b]);
      return lo + (std::max(hi, lo) - lo) * std::clamp(inside, 0.0, 1.0);
    }
  }
  return max_us_;
}

void StatsRegistry::record(std::string_view op, std::string_view outcome,
                           double latency_us, bool cache_hit,
                           bool cache_miss) {
  std::lock_guard<std::mutex> lock(m_);
  auto it = ops_.find(op);
  if (it == ops_.end()) it = ops_.emplace(std::string(op), OpStats{}).first;
  for (OpStats* s : {&it->second, &total_}) {
    ++s->requests;
    if (cache_hit) ++s->cache_hits;
    if (cache_miss) ++s->cache_misses;
    ++s->outcomes[std::string(outcome)];
    s->latency.record(latency_us);
  }
}

JsonValue StatsRegistry::render(const OpStats& s) {
  JsonValue out = JsonValue::object();
  out.set("requests", JsonValue::number(static_cast<double>(s.requests)));
  out.set("cache_hits", JsonValue::number(static_cast<double>(s.cache_hits)));
  out.set("cache_misses",
          JsonValue::number(static_cast<double>(s.cache_misses)));
  JsonValue outcomes = JsonValue::object();
  for (const auto& [name, count] : s.outcomes) {
    outcomes.set(name, JsonValue::number(static_cast<double>(count)));
  }
  out.set("outcomes", std::move(outcomes));
  JsonValue latency = JsonValue::object();
  latency.set("mean_us", JsonValue::number(s.latency.mean_us()));
  latency.set("min_us", JsonValue::number(s.latency.min_us()));
  latency.set("max_us", JsonValue::number(s.latency.max_us()));
  latency.set("p50_us", JsonValue::number(s.latency.percentile(50.0)));
  latency.set("p95_us", JsonValue::number(s.latency.percentile(95.0)));
  latency.set("p99_us", JsonValue::number(s.latency.percentile(99.0)));
  out.set("latency", std::move(latency));
  return out;
}

JsonValue StatsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(m_);
  JsonValue out = JsonValue::object();
  out.set("total", render(total_));
  JsonValue ops = JsonValue::object();
  for (const auto& [name, s] : ops_) ops.set(name, render(s));
  out.set("ops", std::move(ops));
  return out;
}

std::uint64_t StatsRegistry::total_requests() const {
  std::lock_guard<std::mutex> lock(m_);
  return total_.requests;
}

}  // namespace ftl::serve
