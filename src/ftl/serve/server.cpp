#include "ftl/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "ftl/util/error.hpp"

namespace ftl::serve {

namespace {

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Impl {
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  Service& service;
  ServerOptions opts;
  int listen_fd = -1;
  int bound_port = 0;
  std::thread accept_thread;
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};

  std::mutex conns_m;
  std::list<Connection> conns;  // stable addresses for the threads

  Impl(Service& svc, ServerOptions options)
      : service(svc), opts(options) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) throw Error("socket(): " + std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd);
      throw Error("bind(port " + std::to_string(opts.port) + "): " + err);
    }
    if (::listen(listen_fd, opts.backlog) < 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd);
      throw Error("listen(): " + err);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port = ntohs(addr.sin_port);
  }

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
  }

  void accept_loop() {
    while (!stopping.load()) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listening socket shut down (stop()) or fatal error
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      reap_finished();
      std::lock_guard<std::mutex> lock(conns_m);
      if (stopping.load()) {
        ::close(fd);
        break;
      }
      Connection& conn = conns.emplace_back();
      conn.fd = fd;
      conn.thread = std::thread([this, &conn] { connection_loop(conn); });
    }
  }

  void connection_loop(Connection& conn) {
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF, error, or shutdown(fd)
      buffer.append(chunk, static_cast<std::size_t>(n));
      const auto too_long = [&] {
        const std::string err =
            "{\"ok\":false,\"error\":\"bad_request\","
            "\"message\":\"request line too long\"}\n";
        write_all(conn.fd, err.data(), err.size());
        open = false;
      };
      if (buffer.size() > opts.max_line && buffer.find('\n') == std::string::npos) {
        too_long();
        break;
      }
      std::size_t start = 0;
      for (;;) {
        const std::size_t eol = buffer.find('\n', start);
        if (eol == std::string::npos) break;
        std::string line = buffer.substr(start, eol - start);
        start = eol + 1;
        if (line.size() > opts.max_line) {
          too_long();
          break;
        }
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        std::string response = service.submit(std::move(line)).get();
        response += '\n';
        if (!write_all(conn.fd, response.data(), response.size())) {
          open = false;
          break;
        }
      }
      buffer.erase(0, start);
    }
    conn.done.store(true);
  }

  /// Joins and discards connections whose loop has ended (called from the
  /// accept thread so an idle long-lived server does not accumulate fds).
  void reap_finished() {
    std::lock_guard<std::mutex> lock(conns_m);
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->done.load()) {
        it->thread.join();
        ::close(it->fd);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }
};

Server::Server(Service& service, ServerOptions options)
    : impl_(new Impl(service, options)) {}

Server::~Server() { stop(); }

int Server::port() const { return impl_->bound_port; }

void Server::start() {
  if (impl_->started.exchange(true)) return;
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

void Server::stop() {
  Impl& impl = *impl_;
  if (impl.stopped.exchange(true)) return;
  impl.stopping.store(true);
  // Unblock accept(); the loop then observes `stopping` and exits.
  ::shutdown(impl.listen_fd, SHUT_RDWR);
  if (impl.accept_thread.joinable()) impl.accept_thread.join();
  {
    std::lock_guard<std::mutex> lock(impl.conns_m);
    for (Impl::Connection& conn : impl.conns) {
      ::shutdown(conn.fd, SHUT_RDWR);  // recv() returns; in-flight request
                                       // still completes and is answered
    }
  }
  for (Impl::Connection& conn : impl.conns) {
    if (conn.thread.joinable()) conn.thread.join();
    ::close(conn.fd);
  }
  impl.conns.clear();
  impl.service.drain();
}

bool Server::stop_requested() const {
  return impl_->stopping.load() || impl_->service.shutdown_requested();
}

void Server::wait(const std::atomic<bool>* interrupt) const {
  while (!stop_requested() && (interrupt == nullptr || !interrupt->load())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace ftl::serve
