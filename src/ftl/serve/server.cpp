#include "ftl/serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ftl/util/error.hpp"

namespace ftl::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kMaxIov = 64;

const char kTooLongBody[] =
    "{\"ok\":false,\"error\":\"bad_request\","
    "\"message\":\"request line too long\"}";

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct Server::Impl {
  /// One pipelined response in request order. The completing thread (a
  /// Service worker, or the loop thread itself on a cache hit) fills
  /// `response` and then publishes with `ready` (release); only the owning
  /// loop thread reads it back (acquire) and only after `ready` is set, so
  /// the string itself needs no lock.
  struct Slot {
    std::string response;
    std::atomic<bool> ready{false};
  };

  struct Loop;

  /// All non-atomic state is owned by the connection's event-loop shard:
  /// only that thread reads or writes it. Other threads interact with a
  /// connection exclusively through Slot publication + Loop::completed.
  struct Conn : std::enable_shared_from_this<Conn> {
    int fd = -1;
    Loop* loop = nullptr;
    std::string rbuf;                         ///< unparsed input tail
    std::deque<std::shared_ptr<Slot>> slots;  ///< responses, request order
    std::deque<std::string> outq;  ///< flushed responses not yet written
    std::size_t out_off = 0;       ///< bytes of outq.front() already sent
    bool write_blocked = false;    ///< send hit EAGAIN; wait for EPOLLOUT
    bool peer_closed = false;      ///< EOF/reset seen; read side is done
    bool closing = false;          ///< close once slots and outq drain
    bool dead = false;             ///< fd closed and deregistered
  };

  struct Loop {
    int epfd = -1;
    int wakefd = -1;
    std::thread thread;
    // Loop-thread-only connection registry.
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    // Cross-thread mailbox: accepted fds to adopt and connections whose
    // front-of-line slots may now be ready.
    std::mutex m;
    std::vector<int> incoming;
    std::vector<std::weak_ptr<Conn>> completed;
    std::atomic<bool> draining{false};
  };

  Service& service;
  ServerOptions opts;
  int listen_fd = -1;
  int bound_port = 0;
  std::thread accept_thread;
  std::deque<Loop> loops;  // stable addresses for callbacks
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};

  Impl(Service& svc, ServerOptions options) : service(svc), opts(options) {
    if (opts.event_loops == 0) opts.event_loops = 1;
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      throw Error("socket(): " + std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd);
      throw Error("bind(port " + std::to_string(opts.port) + "): " + err);
    }
    if (::listen(listen_fd, opts.backlog) < 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd);
      throw Error("listen(): " + err);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port = ntohs(addr.sin_port);

    for (std::size_t i = 0; i < opts.event_loops; ++i) {
      Loop& loop = loops.emplace_back();
      loop.epfd = ::epoll_create1(EPOLL_CLOEXEC);
      loop.wakefd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (loop.epfd < 0 || loop.wakefd < 0) {
        const std::string err = std::strerror(errno);
        close_all_fds();
        throw Error("event loop setup: " + err);
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = loop.wakefd;
      ::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, loop.wakefd, &ev);
    }
  }

  ~Impl() { close_all_fds(); }

  void close_all_fds() {
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    for (Loop& loop : loops) {
      if (loop.epfd >= 0) ::close(loop.epfd);
      if (loop.wakefd >= 0) ::close(loop.wakefd);
      loop.epfd = loop.wakefd = -1;
    }
  }

  void wake(Loop& loop) {
    const std::uint64_t one = 1;
    // The eventfd is a wake edge, not a counter; a short/failed write when
    // the counter is saturated still leaves the loop wakeable.
    [[maybe_unused]] const ssize_t n =
        ::write(loop.wakefd, &one, sizeof one);
  }

  /// Called by whichever thread completed a slot. On the owning loop thread
  /// the caller flushes in its own batch epilogue; from anywhere else the
  /// connection goes into the shard's mailbox and the eventfd fires.
  void notify(Loop& loop, const std::weak_ptr<Conn>& wc) {
    if (current_loop() == &loop) return;
    {
      std::lock_guard<std::mutex> lock(loop.m);
      loop.completed.push_back(wc);
    }
    wake(loop);
  }

  static Loop*& current_loop() {
    thread_local Loop* current = nullptr;
    return current;
  }

  // -------------------------------------------------------------------------
  // Acceptor

  void accept_loop() {
    std::size_t next = 0;
    while (!stopping.load()) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listening socket shut down (stop()) or fatal error
      }
      if (stopping.load()) {
        ::close(fd);
        break;
      }
      Loop& loop = loops[next++ % loops.size()];
      {
        std::lock_guard<std::mutex> lock(loop.m);
        loop.incoming.push_back(fd);
      }
      wake(loop);
    }
  }

  // -------------------------------------------------------------------------
  // Event loop shard

  void run_loop(Loop& loop) {
    current_loop() = &loop;
    std::vector<epoll_event> events(128);
    bool drain_started = false;
    Clock::time_point drain_t0{};
    for (;;) {
      const bool draining = loop.draining.load(std::memory_order_acquire);
      const int timeout_ms = draining ? 20 : -1;
      const int n = ::epoll_wait(loop.epfd, events.data(),
                                 static_cast<int>(events.size()), timeout_ms);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < std::max(n, 0); ++i) {
        const int fd = events[i].data.fd;
        if (fd == loop.wakefd) continue;  // mailbox handled below
        const auto it = loop.conns.find(fd);
        if (it == loop.conns.end()) continue;  // closed earlier in this batch
        std::shared_ptr<Conn> conn = it->second;
        const std::uint32_t ev = events[i].events;
        if (ev & EPOLLERR) {
          close_conn(loop, conn);
          continue;
        }
        if (ev & EPOLLOUT) conn->write_blocked = false;
        if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) on_readable(conn);
        if (!conn->dead) pump(loop, conn);
      }
      handle_mailbox(loop, draining);
      if (draining && !drain_started) {
        drain_started = true;
        drain_t0 = Clock::now();
        begin_drain(loop);
      }
      if (drain_started) {
        if (!loop.conns.empty() &&
            Clock::now() - drain_t0 >
                std::chrono::milliseconds(opts.drain_grace_ms)) {
          force_close_all(loop);  // client never read its responses
        }
        if (loop.conns.empty()) break;
      }
    }
    current_loop() = nullptr;
  }

  void handle_mailbox(Loop& loop, bool draining) {
    std::uint64_t buf = 0;
    while (::read(loop.wakefd, &buf, sizeof buf) > 0) {
    }
    std::vector<int> incoming;
    std::vector<std::weak_ptr<Conn>> completed;
    {
      std::lock_guard<std::mutex> lock(loop.m);
      incoming.swap(loop.incoming);
      completed.swap(loop.completed);
    }
    for (const int fd : incoming) {
      if (draining) {
        ::close(fd);
        continue;
      }
      adopt(loop, fd);
    }
    for (const std::weak_ptr<Conn>& wc : completed) {
      if (std::shared_ptr<Conn> conn = wc.lock(); conn && !conn->dead) {
        pump(loop, conn);
      }
    }
  }

  void adopt(Loop& loop, int fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    set_nonblocking(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->loop = &loop;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      return;
    }
    loop.conns.emplace(fd, std::move(conn));
  }

  /// Edge-triggered read: drain the socket, framing and submitting every
  /// complete JSON line as it appears.
  void on_readable(const std::shared_ptr<Conn>& conn) {
    if (conn->peer_closed || conn->closing) return;
    char chunk[kReadChunk];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        conn->peer_closed = true;  // reset: deliver what we can, then close
        conn->closing = true;
        break;
      }
      if (n == 0) {  // clean EOF: finish the pipeline, then close
        conn->peer_closed = true;
        conn->closing = true;
        break;
      }
      conn->rbuf.append(chunk, static_cast<std::size_t>(n));
      process_lines(conn);
      if (conn->closing) break;
    }
  }

  void process_lines(const std::shared_ptr<Conn>& conn) {
    std::size_t start = 0;
    for (;;) {
      const std::size_t eol = conn->rbuf.find('\n', start);
      if (eol == std::string::npos) break;
      std::string line = conn->rbuf.substr(start, eol - start);
      start = eol + 1;
      if (line.size() > opts.max_line) {
        push_error(conn, kTooLongBody);
        break;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      submit(conn, std::move(line));
    }
    conn->rbuf.erase(0, start);
    if (!conn->closing && conn->rbuf.size() > opts.max_line) {
      push_error(conn, kTooLongBody);
    }
  }

  /// Appends a synchronous protocol error (in pipeline order) and marks the
  /// connection for close-after-flush.
  void push_error(const std::shared_ptr<Conn>& conn, const char* body) {
    auto slot = std::make_shared<Slot>();
    slot->response = body;
    slot->ready.store(true, std::memory_order_release);
    conn->slots.push_back(std::move(slot));
    conn->closing = true;
  }

  void submit(const std::shared_ptr<Conn>& conn, std::string line) {
    auto slot = std::make_shared<Slot>();
    conn->slots.push_back(slot);
    Loop* loop = conn->loop;
    std::weak_ptr<Conn> wc = conn->weak_from_this();
    service.submit_async(
        std::move(line),
        [this, loop, slot = std::move(slot),
         wc = std::move(wc)](std::string&& response) {
          slot->response = std::move(response);
          slot->ready.store(true, std::memory_order_release);
          notify(*loop, wc);
        });
  }

  /// Flush ready slots into the write queue, push bytes, maybe close.
  void pump(Loop& loop, const std::shared_ptr<Conn>& conn) {
    while (!conn->slots.empty() &&
           conn->slots.front()->ready.load(std::memory_order_acquire)) {
      std::string& response = conn->slots.front()->response;
      response += '\n';
      conn->outq.push_back(std::move(response));
      conn->slots.pop_front();
    }
    if (!try_write(loop, conn)) return;  // connection died mid-write
    if ((conn->closing || conn->peer_closed) && conn->slots.empty() &&
        conn->outq.empty()) {
      close_conn(loop, conn);
    }
  }

  /// Buffered writev-style flush: gathers queued responses into one
  /// sendmsg, tolerating partial writes, EINTR, and EAGAIN. EPIPE (or any
  /// other hard error) closes the connection: the peer is gone, so no
  /// response bytes can be dropped or duplicated by retrying. Returns
  /// false when the connection was closed.
  bool try_write(Loop& loop, const std::shared_ptr<Conn>& conn) {
    while (!conn->outq.empty() && !conn->write_blocked) {
      iovec iov[kMaxIov];
      int count = 0;
      std::size_t off = conn->out_off;
      for (auto it = conn->outq.begin();
           it != conn->outq.end() && count < kMaxIov; ++it) {
        iov[count].iov_base = const_cast<char*>(it->data()) + off;
        iov[count].iov_len = it->size() - off;
        off = 0;
        ++count;
      }
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = static_cast<std::size_t>(count);
      const ssize_t n = ::sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          conn->write_blocked = true;  // EPOLLOUT edge resumes the flush
          return true;
        }
        close_conn(loop, conn);  // EPIPE/ECONNRESET: peer gone
        return false;
      }
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        const std::size_t avail = conn->outq.front().size() - conn->out_off;
        if (left >= avail) {
          left -= avail;
          conn->outq.pop_front();
          conn->out_off = 0;
        } else {
          conn->out_off += left;
          left = 0;
        }
      }
    }
    return true;
  }

  void close_conn(Loop& loop, const std::shared_ptr<Conn>& conn) {
    if (conn->dead) return;
    conn->dead = true;
    ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    loop.conns.erase(conn->fd);
  }

  /// Graceful drain: half-close every read side so no new requests arrive,
  /// then let each connection's in-flight pipeline complete and flush.
  void begin_drain(Loop& loop) {
    std::vector<std::shared_ptr<Conn>> all;
    all.reserve(loop.conns.size());
    for (const auto& [fd, conn] : loop.conns) all.push_back(conn);
    for (const std::shared_ptr<Conn>& conn : all) {
      ::shutdown(conn->fd, SHUT_RD);
      conn->peer_closed = true;
      conn->closing = true;
      pump(loop, conn);  // may close idle connections immediately
    }
  }

  void force_close_all(Loop& loop) {
    std::vector<std::shared_ptr<Conn>> all;
    for (const auto& [fd, conn] : loop.conns) all.push_back(conn);
    for (const std::shared_ptr<Conn>& conn : all) close_conn(loop, conn);
  }
};

Server::Server(Service& service, ServerOptions options)
    : impl_(new Impl(service, options)) {}

Server::~Server() { stop(); }

int Server::port() const { return impl_->bound_port; }

void Server::start() {
  if (impl_->started.exchange(true)) return;
  for (Impl::Loop& loop : impl_->loops) {
    loop.thread = std::thread([this, &loop] { impl_->run_loop(loop); });
  }
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

void Server::stop() {
  Impl& impl = *impl_;
  if (impl.stopped.exchange(true)) return;
  impl.stopping.store(true);
  // Unblock accept(); the loop then observes `stopping` and exits.
  ::shutdown(impl.listen_fd, SHUT_RDWR);
  if (impl.accept_thread.joinable()) impl.accept_thread.join();
  for (Impl::Loop& loop : impl.loops) {
    loop.draining.store(true, std::memory_order_release);
    impl.wake(loop);
  }
  for (Impl::Loop& loop : impl.loops) {
    if (loop.thread.joinable()) loop.thread.join();
  }
  // Loop threads only exit once every pipelined in-flight request has been
  // answered and flushed (or the drain grace expired), so the Service drain
  // below finds at most queued work from other submitters.
  impl.service.drain();
}

bool Server::stop_requested() const {
  return impl_->stopping.load() || impl_->service.shutdown_requested();
}

void Server::wait(const std::atomic<bool>* interrupt) const {
  while (!stop_requested() && (interrupt == nullptr || !interrupt->load())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace ftl::serve
