#include "ftl/serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ftl/util/error.hpp"

namespace ftl::serve {

namespace {

constexpr int kMaxDepth = 64;

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw Error("json parse error at byte " + std::to_string(pos) + ": " + what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return JsonValue::str(string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail(pos_, "invalid literal");
      default: return number();
    }
  }

  JsonValue object(int depth) {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail(pos_, "expected object key string");
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}' in object");
    }
  }

  JsonValue array(int depth) {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']' in array");
    }
  }

  unsigned hex4() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos_ + static_cast<std::size_t>(i), "bad hex digit in \\u escape");
    }
    pos_ += 4;
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail(pos_, "unpaired surrogate in \\u escape");
            }
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail(pos_ - 4, "invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(pos_ - 4, "unpaired surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(pos_ - 1, "invalid escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail(pos_, "invalid number");
    }
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      fail(pos_, "leading zeros are not allowed");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail(pos_, "digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail(pos_, "digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the least-surprising degradation.
    out += "null";
    return;
  }
  // Integers within the double-exact range render without a fraction so ids,
  // counts, and grid sizes look like the integers they are.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_value(std::string& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: append_number(out, v.as_number()); break;
    case JsonValue::Kind::kString: out += json_quote(v.as_string()); break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += ',';
        first = false;
        append_value(out, item);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out += ',';
        first = false;
        out += json_quote(key);
        out += ':';
        append_value(out, value);
      }
      out += '}';
      break;
    }
  }
}

[[noreturn]] void wrong_kind(const char* wanted) {
  throw Error(std::string("json value is not a ") + wanted);
}

}  // namespace

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) wrong_kind("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) wrong_kind("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) wrong_kind("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) wrong_kind("array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (kind_ != Kind::kObject) wrong_kind("object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number()) {
    throw Error("field '" + std::string(key) + "' must be a number");
  }
  return v->as_number();
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_string()) {
    throw Error("field '" + std::string(key) + "' must be a string");
  }
  return v->as_string();
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_bool()) {
    throw Error("field '" + std::string(key) + "' must be a bool");
  }
  return v->as_bool();
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (kind_ != Kind::kObject) wrong_kind("object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (kind_ != Kind::kArray) wrong_kind("array");
  items_.push_back(std::move(value));
  return *this;
}

std::string JsonValue::dump() const {
  std::string out;
  append_value(out, *this);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.bool_ == b.bool_;
    case JsonValue::Kind::kNumber: return a.number_ == b.number_;
    case JsonValue::Kind::kString: return a.string_ == b.string_;
    case JsonValue::Kind::kArray: return a.items_ == b.items_;
    case JsonValue::Kind::kObject: return a.members_ == b.members_;
  }
  return false;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace ftl::serve
