#include "ftl/serve/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "ftl/util/error.hpp"

namespace ftl::serve {

Client::Client(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &result);
  if (rc != 0) {
    throw Error("resolve " + host + ": " + ::gai_strerror(rc));
  }
  std::string last_error = "no addresses";
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      fd_ = fd;
      break;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(result);
  if (fd_ < 0) {
    throw Error("connect " + host + ":" + std::to_string(port) + ": " +
                last_error);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), rxbuf_(std::move(other.rxbuf_)) {}

JsonValue Client::call(const JsonValue& request) {
  return JsonValue::parse(call_line(request.dump()));
}

namespace {

void send_all(int fd, const std::string& tx) {
  const char* data = tx.data();
  std::size_t size = tx.size();
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("send: " + std::string(std::strerror(errno)));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string Client::call_line(const std::string& line) {
  std::string tx = line;
  tx += '\n';
  send_all(fd_, tx);
  return recv_line();
}

void Client::send_lines(const std::vector<std::string>& lines) {
  std::string tx;
  std::size_t total = 0;
  for (const std::string& line : lines) total += line.size() + 1;
  tx.reserve(total);
  for (const std::string& line : lines) {
    tx += line;
    tx += '\n';
  }
  send_all(fd_, tx);
}

std::string Client::recv_line() {
  for (;;) {
    const std::size_t eol = rxbuf_.find('\n');
    if (eol != std::string::npos) {
      std::string response = rxbuf_.substr(0, eol);
      rxbuf_.erase(0, eol + 1);
      return response;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("server closed the connection");
    rxbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::set_receive_buffer(int bytes) {
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes);
}

}  // namespace ftl::serve
