#pragma once
// Consistent hashing over a set of serve endpoints. Each node contributes
// `vnodes` virtual points on a 64-bit ring (FNV-1a of "node#i"); a key maps
// to the first point clockwise from its own hash. Adding or removing one
// node therefore only remaps the keys that landed on that node's points —
// the property that lets N shared-nothing ftl_serve processes form a cache
// tier where each process keeps a stable slice of the keyspace warm.
//
// Used by ftl_loadgen's --endpoints mode; deterministic across processes
// and runs (no seeding), so every client agrees on the key → node map.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ftl::serve {

class HashRing {
 public:
  /// Builds the ring; throws ftl::Error when `nodes` is empty or `vnodes`
  /// is not positive. Node order does not affect the mapping.
  explicit HashRing(std::vector<std::string> nodes, int vnodes = 64);

  std::size_t size() const { return nodes_.size(); }
  const std::vector<std::string>& nodes() const { return nodes_; }

  /// Index (into nodes()) of the node owning `key`.
  std::size_t index_for(std::string_view key) const;

  /// The node owning `key`.
  const std::string& node_for(std::string_view key) const {
    return nodes_[index_for(key)];
  }

 private:
  std::vector<std::string> nodes_;
  // (ring point, node index), sorted by point; lookup is an upper_bound.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

}  // namespace ftl::serve
