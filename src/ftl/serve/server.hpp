#pragma once
// POSIX TCP front-end for the Service: accepts connections on a listening
// socket, reads newline-delimited JSON requests, pushes them through the
// Service's admission queue, and writes one response line per request (in
// request order per connection; concurrency comes from concurrent
// connections sharing the worker pool).
//
// Lifecycle: the constructor binds and listens (port 0 picks an ephemeral
// port, reported by port()); start() launches the accept loop; stop() is the
// graceful drain — stop accepting, shut down the per-connection sockets,
// join their threads, then Service::drain() finishes in-flight requests.

#include <atomic>
#include <memory>

#include "ftl/serve/service.hpp"

namespace ftl::serve {

struct ServerOptions {
  int port = 0;          ///< TCP port; 0 = ephemeral (see Server::port())
  int backlog = 64;      ///< listen(2) backlog
  std::size_t max_line = 1 << 20;  ///< request line cap; longer closes the
                                   ///< connection after an error response
};

class Server {
 public:
  /// Binds and listens on 127.0.0.1:port; throws ftl::Error on failure.
  Server(Service& service, ServerOptions options = {});
  ~Server();  ///< stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (useful with port 0).
  int port() const;

  /// Launches the accept loop; returns immediately.
  void start();

  /// Graceful shutdown: stop accepting, drain connections and the Service.
  /// Idempotent; safe to call while connections are active.
  void stop();

  /// True once stop() ran or a client served a "shutdown" request.
  bool stop_requested() const;

  /// Blocks until stop is requested (shutdown op) or `*interrupt` becomes
  /// true (e.g. a SIGINT flag); polls at ~50 ms. Does not call stop().
  void wait(const std::atomic<bool>* interrupt = nullptr) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftl::serve
