#pragma once
// POSIX TCP front-end for the Service: an epoll edge-triggered, non-blocking
// event loop. One blocking acceptor thread distributes connections
// round-robin over N event-loop shards; each shard owns its connections'
// sockets and buffers outright (no cross-shard sharing), reads with
// incremental JSON-line framing, and supports request pipelining: many
// requests per connection may be in flight at once, with responses written
// back in request order through per-connection ordered completion slots.
// Writes are buffered and batched through sendmsg() iovecs (writev-style),
// tolerating partial writes, EINTR, EAGAIN, and EPIPE.
//
// Cached pure-op answers complete synchronously on the event-loop thread
// (never touching the worker pool); misses run on the Service's workers and
// wake the owning shard through its eventfd when the response is ready.
//
// Lifecycle: the constructor binds and listens (port 0 picks an ephemeral
// port, reported by port()); start() launches the acceptor and the loop
// shards; stop() is the graceful drain — stop accepting, stop reading,
// finish writing every in-flight pipelined response, then Service::drain().

#include <atomic>
#include <cstddef>
#include <memory>

#include "ftl/serve/service.hpp"

namespace ftl::serve {

struct ServerOptions {
  int port = 0;          ///< TCP port; 0 = ephemeral (see Server::port())
  int backlog = 128;     ///< listen(2) backlog
  std::size_t max_line = 1 << 20;  ///< request line cap; longer closes the
                                   ///< connection after an error response
  std::size_t event_loops = 2;     ///< epoll shards (>= 1)
  /// Graceful-drain grace period: connections that still cannot flush their
  /// pending responses this long after stop() are force-closed so a client
  /// that never reads cannot wedge shutdown.
  int drain_grace_ms = 10000;
};

class Server {
 public:
  /// Binds and listens on 127.0.0.1:port; throws ftl::Error on failure.
  Server(Service& service, ServerOptions options = {});
  ~Server();  ///< stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (useful with port 0).
  int port() const;

  /// Launches the acceptor and event-loop shards; returns immediately.
  void start();

  /// Graceful shutdown: stop accepting, stop reading, complete and flush
  /// in-flight pipelined requests, then drain the Service. Idempotent; safe
  /// to call while connections are active.
  void stop();

  /// True once stop() ran or a client served a "shutdown" request.
  bool stop_requested() const;

  /// Blocks until stop is requested (shutdown op) or `*interrupt` becomes
  /// true (e.g. a SIGINT flag); polls at ~50 ms. Does not call stop().
  void wait(const std::atomic<bool>* interrupt = nullptr) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftl::serve
