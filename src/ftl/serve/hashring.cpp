#include "ftl/serve/hashring.hpp"

#include <algorithm>
#include <utility>

#include "ftl/jobs/digest.hpp"
#include "ftl/util/error.hpp"

namespace ftl::serve {

HashRing::HashRing(std::vector<std::string> nodes, int vnodes)
    : nodes_(std::move(nodes)) {
  if (nodes_.empty()) throw Error("hash ring needs at least one node");
  if (vnodes <= 0) throw Error("hash ring vnodes must be positive");
  ring_.reserve(nodes_.size() * static_cast<std::size_t>(vnodes));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (int v = 0; v < vnodes; ++v) {
      const std::string point = nodes_[i] + "#" + std::to_string(v);
      ring_.emplace_back(jobs::mix64(jobs::fnv1a64(point)), i);
    }
  }
  // Sort by ring point; ties (hash collisions between points) break by node
  // index so the mapping stays independent of construction order details.
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::index_for(std::string_view key) const {
  const std::uint64_t h = jobs::mix64(jobs::fnv1a64(key));
  // First point strictly clockwise from the key's hash, wrapping to the
  // smallest point when the key hashes past the last one.
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), h,
      [](std::uint64_t value, const std::pair<std::uint64_t, std::size_t>& p) {
        return value < p.first;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace ftl::serve
