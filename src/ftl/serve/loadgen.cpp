#include "ftl/serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "ftl/serve/client.hpp"
#include "ftl/util/error.hpp"

namespace ftl::serve {

namespace {

using Clock = std::chrono::steady_clock;

double exact_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank on the sorted sample.
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  const std::size_t index = static_cast<std::size_t>(
      std::clamp(std::ceil(rank) - 1.0, 0.0,
                 static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

}  // namespace

JsonValue LoadgenReport::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("sent", JsonValue::number(static_cast<double>(sent)));
  out.set("ok", JsonValue::number(static_cast<double>(ok)));
  out.set("errors", JsonValue::number(static_cast<double>(errors)));
  out.set("wall_s", JsonValue::number(wall_s));
  out.set("throughput_rps", JsonValue::number(throughput_rps));
  out.set("mean_us", JsonValue::number(mean_us));
  out.set("p50_us", JsonValue::number(p50_us));
  out.set("p95_us", JsonValue::number(p95_us));
  out.set("p99_us", JsonValue::number(p99_us));
  out.set("max_us", JsonValue::number(max_us));
  return out;
}

std::string LoadgenReport::to_string() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "requests  %zu sent, %zu ok, %zu errors\n"
                "wall      %.3f s  (%.0f req/s)\n"
                "latency   mean %.0f us  p50 %.0f us  p95 %.0f us  "
                "p99 %.0f us  max %.0f us\n",
                sent, ok, errors, wall_s, throughput_rps, mean_us, p50_us,
                p95_us, p99_us, max_us);
  return buf;
}

LoadgenReport run_loadgen(const LoadgenOptions& options) {
  if (options.mix.empty()) throw Error("loadgen: empty request mix");
  if (options.connections == 0 || options.requests == 0) {
    throw Error("loadgen: connections and requests must be positive");
  }

  const std::size_t connections =
      std::min(options.connections, options.requests);
  // Connect up front so a refused endpoint fails fast instead of skewing
  // the measurement window.
  std::vector<Client> clients;
  clients.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    clients.emplace_back(options.host, options.port);
  }

  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::size_t> oks(connections, 0);
  std::vector<std::size_t> fails(connections, 0);

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    // Split the total evenly; the first (requests % connections) take one extra.
    const std::size_t quota = options.requests / connections +
                              (c < options.requests % connections ? 1 : 0);
    threads.emplace_back([&, c, quota] {
      Client& client = clients[c];
      latencies[c].reserve(quota);
      for (std::size_t i = 0; i < quota; ++i) {
        const std::string& line = options.mix[(c + i) % options.mix.size()];
        const Clock::time_point start = Clock::now();
        try {
          const std::string response = client.call_line(line);
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - start)
                  .count();
          latencies[c].push_back(us);
          const JsonValue parsed = JsonValue::parse(response);
          if (parsed.bool_or("ok", false)) {
            ++oks[c];
          } else {
            ++fails[c];
          }
        } catch (const std::exception&) {
          ++fails[c];
          return;  // transport is gone; stop this connection
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadgenReport report;
  std::vector<double> merged;
  for (std::size_t c = 0; c < connections; ++c) {
    report.ok += oks[c];
    report.errors += fails[c];
    merged.insert(merged.end(), latencies[c].begin(), latencies[c].end());
  }
  report.sent = report.ok + report.errors;
  report.wall_s = wall_s;
  report.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(merged.size()) / wall_s : 0.0;
  std::sort(merged.begin(), merged.end());
  if (!merged.empty()) {
    double sum = 0.0;
    for (const double v : merged) sum += v;
    report.mean_us = sum / static_cast<double>(merged.size());
    report.p50_us = exact_percentile(merged, 50.0);
    report.p95_us = exact_percentile(merged, 95.0);
    report.p99_us = exact_percentile(merged, 99.0);
    report.max_us = merged.back();
  }
  return report;
}

}  // namespace ftl::serve
