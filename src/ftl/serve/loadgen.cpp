#include "ftl/serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <thread>

#include "ftl/serve/client.hpp"
#include "ftl/serve/hashring.hpp"
#include "ftl/util/error.hpp"

namespace ftl::serve {

namespace {

using Clock = std::chrono::steady_clock;

double exact_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank on the sorted sample.
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  const std::size_t index = static_cast<std::size_t>(
      std::clamp(std::ceil(rank) - 1.0, 0.0,
                 static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

// Responses open with {"op":...,"ok":<bool>,...}, so scanning a short prefix
// classifies them without the JSON parse that would otherwise dominate the
// client side of a cached-throughput run.
bool response_ok(const std::string& response) {
  return std::string_view(response).substr(0, 64).find("\"ok\":true") !=
         std::string_view::npos;
}

struct Endpoint {
  std::string host;
  int port = 0;
  std::vector<std::string> lines;  ///< slice of the mix routed here
  std::size_t quota = 0;           ///< requests assigned to this endpoint
  std::size_t connections = 0;
};

Endpoint parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    throw Error("loadgen: endpoint \"" + spec + "\" is not host:port");
  }
  Endpoint ep;
  ep.host = colon == 0 ? std::string("127.0.0.1") : spec.substr(0, colon);
  try {
    ep.port = std::stoi(spec.substr(colon + 1));
  } catch (const std::exception&) {
    throw Error("loadgen: endpoint \"" + spec + "\" has a bad port");
  }
  if (ep.port <= 0 || ep.port > 65535) {
    throw Error("loadgen: endpoint \"" + spec + "\" has a bad port");
  }
  return ep;
}

/// Reads total cache hit/miss counters from an endpoint's `stats` op.
/// Returns false (leaving the outputs untouched) when the probe fails.
bool cache_totals(const std::string& host, int port, double* hits,
                  double* misses) {
  try {
    Client probe(host, port);
    const JsonValue response =
        JsonValue::parse(probe.call_line("{\"op\":\"stats\"}"));
    const JsonValue* stats = response.find("stats");
    const JsonValue* total = stats != nullptr ? stats->find("total") : nullptr;
    if (total == nullptr) return false;
    *hits = total->number_or("cache_hits", 0.0);
    *misses = total->number_or("cache_misses", 0.0);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

JsonValue LoadgenReport::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("sent", JsonValue::number(static_cast<double>(sent)));
  out.set("ok", JsonValue::number(static_cast<double>(ok)));
  out.set("errors", JsonValue::number(static_cast<double>(errors)));
  out.set("wall_s", JsonValue::number(wall_s));
  out.set("throughput_rps", JsonValue::number(throughput_rps));
  out.set("mean_us", JsonValue::number(mean_us));
  out.set("p50_us", JsonValue::number(p50_us));
  out.set("p95_us", JsonValue::number(p95_us));
  out.set("p99_us", JsonValue::number(p99_us));
  out.set("max_us", JsonValue::number(max_us));
  out.set("cache_hit_rate", JsonValue::number(cache_hit_rate));
  return out;
}

std::string LoadgenReport::to_string() const {
  char buf[512];
  int n = std::snprintf(buf, sizeof buf,
                        "requests  %zu sent, %zu ok, %zu errors\n"
                        "wall      %.3f s  (%.0f req/s)\n"
                        "latency   mean %.0f us  p50 %.0f us  p95 %.0f us  "
                        "p99 %.0f us  max %.0f us\n",
                        sent, ok, errors, wall_s, throughput_rps, mean_us,
                        p50_us, p95_us, p99_us, max_us);
  if (n > 0 && cache_hit_rate >= 0.0) {
    std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                  "cache     %.1f%% server-side hit rate\n",
                  cache_hit_rate * 100.0);
  }
  return buf;
}

LoadgenReport run_loadgen(const LoadgenOptions& options) {
  if (options.mix.empty()) throw Error("loadgen: empty request mix");
  if (options.connections == 0 || options.requests == 0) {
    throw Error("loadgen: connections and requests must be positive");
  }
  if (options.pipeline == 0) {
    throw Error("loadgen: pipeline depth must be positive");
  }

  // Route the mix. With one endpoint everything lands there; with several,
  // each line goes to its consistent-hash owner so every serve process sees
  // a stable slice of the keyspace and its cache stays warm for that slice.
  std::vector<Endpoint> endpoints;
  if (options.endpoints.empty()) {
    Endpoint ep;
    ep.host = options.host;
    ep.port = options.port;
    ep.lines = options.mix;
    endpoints.push_back(std::move(ep));
  } else {
    for (const std::string& spec : options.endpoints) {
      endpoints.push_back(parse_endpoint(spec));
    }
    const HashRing ring(options.endpoints);
    for (const std::string& line : options.mix) {
      endpoints[ring.index_for(line)].lines.push_back(line);
    }
  }

  // Requests split proportionally to each endpoint's share of the mix;
  // connections likewise, with at least one per endpoint that has traffic.
  std::size_t assigned = 0;
  for (Endpoint& ep : endpoints) {
    ep.quota = options.requests * ep.lines.size() / options.mix.size();
    assigned += ep.quota;
  }
  for (std::size_t i = 0; assigned < options.requests; i = i + 1) {
    Endpoint& ep = endpoints[i % endpoints.size()];
    if (ep.lines.empty()) continue;
    ++ep.quota;
    ++assigned;
  }
  const std::size_t conn_budget =
      std::min(options.connections, options.requests);
  for (Endpoint& ep : endpoints) {
    if (ep.quota == 0) continue;
    const std::size_t share = conn_budget * ep.quota / options.requests;
    ep.connections = std::clamp<std::size_t>(share, 1, ep.quota);
  }

  // Pre-run cache counters per endpoint, for the hit-rate delta. A failed
  // probe (or one that fails later) leaves the rate unknown rather than
  // wrong.
  std::vector<double> hits0(endpoints.size(), 0.0);
  std::vector<double> misses0(endpoints.size(), 0.0);
  std::vector<bool> probed(endpoints.size(), false);
  for (std::size_t e = 0; e < endpoints.size(); ++e) {
    if (endpoints[e].quota == 0) continue;
    probed[e] =
        cache_totals(endpoints[e].host, endpoints[e].port, &hits0[e],
                     &misses0[e]);
  }

  // One worker per connection. Connect up front so a refused endpoint fails
  // fast instead of skewing the measurement window.
  struct Worker {
    const Endpoint* endpoint = nullptr;
    std::size_t quota = 0;
    std::size_t offset = 0;  ///< starting index into the endpoint's lines
  };
  std::vector<Worker> workers;
  std::vector<Client> clients;
  for (Endpoint& ep : endpoints) {
    for (std::size_t c = 0; c < ep.connections; ++c) {
      Worker w;
      w.endpoint = &ep;
      w.quota = ep.quota / ep.connections +
                (c < ep.quota % ep.connections ? 1 : 0);
      w.offset = c;
      if (w.quota == 0) continue;
      workers.push_back(w);
      clients.emplace_back(ep.host, ep.port);
    }
  }

  std::vector<std::vector<double>> latencies(workers.size());
  std::vector<std::size_t> oks(workers.size(), 0);
  std::vector<std::size_t> fails(workers.size(), 0);

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (std::size_t w = 0; w < workers.size(); ++w) {
    threads.emplace_back([&, w] {
      const Worker& worker = workers[w];
      const std::vector<std::string>& lines = worker.endpoint->lines;
      Client& client = clients[w];
      latencies[w].reserve(worker.quota);
      // Closed-loop pipelining: keep up to `pipeline` requests in flight,
      // batching each refill into one send(2). Latency timestamps are taken
      // at send time, so they include time queued behind the window — the
      // honest number for a pipelined client.
      std::deque<Clock::time_point> inflight;
      std::vector<std::string> batch;
      std::size_t sent = 0;
      std::size_t received = 0;
      try {
        while (received < worker.quota) {
          if (sent < worker.quota && inflight.size() < options.pipeline) {
            const std::size_t n = std::min(options.pipeline - inflight.size(),
                                           worker.quota - sent);
            batch.clear();
            for (std::size_t i = 0; i < n; ++i) {
              batch.push_back(
                  lines[(worker.offset + sent + i) % lines.size()]);
            }
            const Clock::time_point now = Clock::now();
            for (std::size_t i = 0; i < n; ++i) inflight.push_back(now);
            client.send_lines(batch);
            sent += n;
          }
          const std::string response = client.recv_line();
          const double us = std::chrono::duration<double, std::micro>(
                                Clock::now() - inflight.front())
                                .count();
          inflight.pop_front();
          ++received;
          latencies[w].push_back(us);
          if (response_ok(response)) {
            ++oks[w];
          } else {
            ++fails[w];
          }
        }
      } catch (const std::exception&) {
        ++fails[w];  // transport is gone; stop this connection
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  LoadgenReport report;
  std::vector<double> merged;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    report.ok += oks[w];
    report.errors += fails[w];
    merged.insert(merged.end(), latencies[w].begin(), latencies[w].end());
  }
  report.sent = report.ok + report.errors;
  report.wall_s = wall_s;
  report.throughput_rps =
      wall_s > 0.0 ? static_cast<double>(merged.size()) / wall_s : 0.0;
  std::sort(merged.begin(), merged.end());
  if (!merged.empty()) {
    double sum = 0.0;
    for (const double v : merged) sum += v;
    report.mean_us = sum / static_cast<double>(merged.size());
    report.p50_us = exact_percentile(merged, 50.0);
    report.p95_us = exact_percentile(merged, 95.0);
    report.p99_us = exact_percentile(merged, 99.0);
    report.max_us = merged.back();
  }

  // Post-run counters; the rate is only reported when every active endpoint
  // answered both probes.
  double delta_hits = 0.0;
  double delta_total = 0.0;
  bool rate_known = true;
  for (std::size_t e = 0; e < endpoints.size(); ++e) {
    if (endpoints[e].quota == 0) continue;
    double hits1 = 0.0;
    double misses1 = 0.0;
    if (!probed[e] ||
        !cache_totals(endpoints[e].host, endpoints[e].port, &hits1,
                      &misses1)) {
      rate_known = false;
      break;
    }
    delta_hits += hits1 - hits0[e];
    delta_total += (hits1 - hits0[e]) + (misses1 - misses0[e]);
  }
  if (rate_known && delta_total > 0.0) {
    report.cache_hit_rate = delta_hits / delta_total;
  }
  return report;
}

}  // namespace ftl::serve
