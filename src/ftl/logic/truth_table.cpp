#include "ftl/logic/truth_table.hpp"

#include <bit>
#include <sstream>

#include "ftl/util/error.hpp"

namespace ftl::logic {

std::size_t TruthTable::word_count(int num_vars) {
  const std::uint64_t bits = std::uint64_t{1} << num_vars;
  return static_cast<std::size_t>((bits + 63) / 64);
}

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  FTL_EXPECTS(num_vars >= 0 && num_vars <= kMaxVars);
  words_.assign(word_count(num_vars), 0);
}

void TruthTable::mask_tail() {
  if (num_vars_ >= 6) return;
  const std::uint64_t bits = std::uint64_t{1} << num_vars_;
  words_[0] &= (bits == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

TruthTable TruthTable::from_function(
    int num_vars, const std::function<bool(std::uint64_t)>& fn) {
  TruthTable t(num_vars);
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
    if (fn(m)) t.set(m, true);
  }
  return t;
}

TruthTable TruthTable::from_sop(const Sop& sop) {
  FTL_EXPECTS(sop.num_vars() <= kMaxVars);
  return from_function(sop.num_vars(),
                       [&sop](std::uint64_t m) { return sop.evaluate(m); });
}

TruthTable TruthTable::from_bits(int num_vars, std::uint64_t bits) {
  FTL_EXPECTS(num_vars >= 0 && num_vars <= 6);
  TruthTable t(num_vars);
  t.words_[0] = bits;
  t.mask_tail();
  return t;
}

TruthTable TruthTable::from_words(int num_vars,
                                  std::vector<std::uint64_t> words) {
  FTL_EXPECTS(num_vars >= 0 && num_vars <= kMaxVars);
  FTL_EXPECTS(words.size() == word_count(num_vars));
  TruthTable t(num_vars);
  t.words_ = std::move(words);
  t.mask_tail();
  return t;
}

TruthTable TruthTable::constant(int num_vars, bool value) {
  TruthTable t(num_vars);
  if (value) {
    for (auto& w : t.words_) w = ~std::uint64_t{0};
    t.mask_tail();
  }
  return t;
}

TruthTable TruthTable::variable(int num_vars, int var) {
  FTL_EXPECTS(var >= 0 && var < num_vars);
  return from_function(num_vars, [var](std::uint64_t m) {
    return ((m >> var) & 1) != 0;
  });
}

bool TruthTable::get(std::uint64_t minterm) const {
  FTL_EXPECTS(minterm < num_minterms());
  return ((words_[minterm >> 6] >> (minterm & 63)) & 1) != 0;
}

void TruthTable::set(std::uint64_t minterm, bool value) {
  FTL_EXPECTS(minterm < num_minterms());
  const std::uint64_t bit = std::uint64_t{1} << (minterm & 63);
  if (value) {
    words_[minterm >> 6] |= bit;
  } else {
    words_[minterm >> 6] &= ~bit;
  }
}

std::uint64_t TruthTable::word(std::size_t i) const {
  FTL_EXPECTS(i < words_.size());
  return words_[i];
}

bool TruthTable::is_zero() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool TruthTable::is_one() const {
  return count_ones() == num_minterms();
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t acc = 0;
  for (std::uint64_t w : words_) acc += static_cast<std::uint64_t>(std::popcount(w));
  return acc;
}

TruthTable TruthTable::transformed(const std::vector<int>& perm,
                                   std::uint32_t input_negations,
                                   bool negate_output) const {
  FTL_EXPECTS(perm.size() == static_cast<std::size_t>(num_vars_));
  std::uint32_t seen = 0;
  for (const int p : perm) {
    FTL_EXPECTS(p >= 0 && p < num_vars_);
    seen |= std::uint32_t{1} << p;
  }
  FTL_EXPECTS(num_vars_ >= 32 ||
              seen == ((std::uint32_t{1} << num_vars_) - 1));
  TruthTable out(num_vars_);
  for (std::uint64_t x = 0; x < num_minterms(); ++x) {
    std::uint64_t y = 0;
    for (int j = 0; j < num_vars_; ++j) {
      const std::uint64_t bit =
          ((x >> perm[static_cast<std::size_t>(j)]) ^
           (input_negations >> j)) & 1;
      y |= bit << j;
    }
    out.set(x, negate_output != get(y));
  }
  return out;
}

bool TruthTable::depends_on(int var) const {
  FTL_EXPECTS(var >= 0 && var < num_vars_);
  return !(cofactor(var, false) == cofactor(var, true));
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  FTL_EXPECTS(var >= 0 && var < num_vars_);
  TruthTable out(num_vars_);
  if (var >= 6) {
    // Whole-word block copy: blocks of 2^(var-6) words alternate var=0/var=1.
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t base = 0; base < words_.size(); base += 2 * block) {
      const std::size_t src = base + (value ? block : 0);
      for (std::size_t i = 0; i < block; ++i) {
        out.words_[base + i] = words_[src + i];
        out.words_[base + block + i] = words_[src + i];
      }
    }
  } else {
    // In-word shuffle via masks.
    const int shift = 1 << var;
    std::uint64_t mask = 0;
    for (std::uint64_t m = 0; m < 64; ++m) {
      if (((m >> var) & 1) == 0) mask |= std::uint64_t{1} << m;
    }
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t src = words_[w];
      std::uint64_t half;
      if (value) {
        half = (src >> shift) & mask;  // var=1 slice moved into var=0 slots
      } else {
        half = src & mask;
      }
      out.words_[w] = half | (half << shift);
    }
    out.mask_tail();
  }
  return out;
}

TruthTable TruthTable::dual() const {
  const std::uint64_t all = num_minterms() - 1;
  TruthTable out(num_vars_);
  for (std::uint64_t m = 0; m <= all; ++m) {
    out.set(m, !get(~m & all));
  }
  return out;
}

TruthTable TruthTable::operator~() const {
  TruthTable out(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  out.mask_tail();
  return out;
}

TruthTable TruthTable::operator&(const TruthTable& rhs) const {
  FTL_EXPECTS(num_vars_ == rhs.num_vars_);
  TruthTable out(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = words_[i] & rhs.words_[i];
  return out;
}

TruthTable TruthTable::operator|(const TruthTable& rhs) const {
  FTL_EXPECTS(num_vars_ == rhs.num_vars_);
  TruthTable out(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = words_[i] | rhs.words_[i];
  return out;
}

TruthTable TruthTable::operator^(const TruthTable& rhs) const {
  FTL_EXPECTS(num_vars_ == rhs.num_vars_);
  TruthTable out(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = words_[i] ^ rhs.words_[i];
  return out;
}

bool operator==(const TruthTable& a, const TruthTable& b) {
  return a.num_vars_ == b.num_vars_ && a.words_ == b.words_;
}

bool TruthTable::implies(const TruthTable& g) const {
  FTL_EXPECTS(num_vars_ == g.num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~g.words_[i]) != 0) return false;
  }
  return true;
}

std::string TruthTable::to_hex() const {
  std::ostringstream os;
  os << std::hex;
  for (std::size_t i = words_.size(); i-- > 0;) {
    os << words_[i];
    if (i != 0) os << '_';
  }
  return os.str();
}

}  // namespace ftl::logic
