#pragma once
// Sum-of-products covers built from Cubes, with absorption-based
// simplification. The lattice function of §II is exactly such a cover: the
// OR over irredundant top-to-bottom paths of the AND of their control
// variables.

#include <cstdint>
#include <string>
#include <vector>

#include "ftl/logic/cube.hpp"

namespace ftl::logic {

/// Disjunction of cubes over `num_vars` variables.
class Sop {
 public:
  Sop() = default;
  explicit Sop(int num_vars);
  Sop(int num_vars, std::vector<Cube> cubes);

  int num_vars() const { return num_vars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  bool empty() const { return cubes_.empty(); }
  int size() const { return static_cast<int>(cubes_.size()); }

  /// Appends a cube; variables must lie below num_vars().
  void add(Cube cube);

  /// Evaluates under `assignment` (bit v = value of variable v).
  bool evaluate(std::uint64_t assignment) const;

  /// Removes cubes covered (absorbed) by another cube of the cover, and
  /// duplicate cubes. "x + x y = x".
  void absorb();

  /// Sorts cubes lexicographically for deterministic output.
  void canonicalize();

  /// True when some cube is the constant-1 product.
  bool has_constant_one() const;

  /// Renders as "a b' + c", using names or x<i> fallbacks.
  std::string to_string(const std::vector<std::string>& names = {}) const;

 private:
  int num_vars_ = 0;
  std::vector<Cube> cubes_;
};

}  // namespace ftl::logic
