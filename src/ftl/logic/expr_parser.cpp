#include "ftl/logic/expr_parser.hpp"

#include <cctype>
#include <memory>

#include "ftl/util/error.hpp"

namespace ftl::logic {
namespace {

enum class NodeKind { kVar, kConst, kNot, kAnd, kOr };

struct Node {
  NodeKind kind;
  int var = -1;        // kVar
  bool value = false;  // kConst
  std::unique_ptr<Node> lhs;
  std::unique_ptr<Node> rhs;
};

using NodePtr = std::unique_ptr<Node>;

class Parser {
 public:
  Parser(std::string_view text, std::vector<std::string> names, bool fixed)
      : text_(text), names_(std::move(names)), fixed_names_(fixed) {}

  NodePtr parse() {
    NodePtr root = parse_or();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ftl::Error("expression: unexpected character '" +
                       std::string(1, text_[pos_]) + "' at offset " +
                       std::to_string(pos_));
    }
    return root;
  }

  std::vector<std::string> take_names() { return std::move(names_); }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool at_factor_start() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '(' || c == '!';
  }

  NodePtr parse_or() {
    NodePtr lhs = parse_and();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '|')) {
        ++pos_;
        NodePtr rhs = parse_and();
        auto node = std::make_unique<Node>();
        node->kind = NodeKind::kOr;
        node->lhs = std::move(lhs);
        node->rhs = std::move(rhs);
        lhs = std::move(node);
      } else {
        return lhs;
      }
    }
  }

  NodePtr parse_and() {
    NodePtr lhs = parse_factor();
    for (;;) {
      skip_ws();
      bool explicit_op = false;
      if (pos_ < text_.size() && (text_[pos_] == '*' || text_[pos_] == '&')) {
        ++pos_;
        explicit_op = true;
      }
      if (!explicit_op && !at_factor_start()) return lhs;
      NodePtr rhs = parse_factor();
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  NodePtr parse_factor() {
    skip_ws();
    if (pos_ >= text_.size()) throw ftl::Error("expression: unexpected end of input");
    const char c = text_[pos_];
    if (c == '!') {
      ++pos_;
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::kNot;
      node->lhs = parse_factor();
      return node;
    }
    NodePtr atom;
    if (c == '(') {
      ++pos_;
      atom = parse_or();
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        throw ftl::Error("expression: missing ')'");
      }
      ++pos_;
    } else if (c == '0' || c == '1') {
      ++pos_;
      atom = std::make_unique<Node>();
      atom->kind = NodeKind::kConst;
      atom->value = (c == '1');
    } else if (std::isalpha(static_cast<unsigned char>(c)) != 0) {
      std::size_t end = pos_ + 1;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) != 0 ||
              text_[end] == '_')) {
        ++end;
      }
      const std::string name(text_.substr(pos_, end - pos_));
      pos_ = end;
      atom = std::make_unique<Node>();
      atom->kind = NodeKind::kVar;
      atom->var = lookup(name);
    } else {
      throw ftl::Error("expression: unexpected character '" + std::string(1, c) +
                       "' at offset " + std::to_string(pos_));
    }
    // Postfix complement(s).
    while (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      auto node = std::make_unique<Node>();
      node->kind = NodeKind::kNot;
      node->lhs = std::move(atom);
      atom = std::move(node);
    }
    return atom;
  }

  int lookup(const std::string& name) {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    if (fixed_names_) {
      throw ftl::Error("expression: unknown variable '" + name + "'");
    }
    if (names_.size() >= TruthTable::kMaxVars) {
      throw ftl::Error("expression: too many variables (max 26)");
    }
    names_.push_back(name);
    return static_cast<int>(names_.size()) - 1;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::vector<std::string> names_;
  bool fixed_names_;
};

bool evaluate(const Node& node, std::uint64_t assignment) {
  switch (node.kind) {
    case NodeKind::kVar: return ((assignment >> node.var) & 1) != 0;
    case NodeKind::kConst: return node.value;
    case NodeKind::kNot: return !evaluate(*node.lhs, assignment);
    case NodeKind::kAnd:
      return evaluate(*node.lhs, assignment) && evaluate(*node.rhs, assignment);
    case NodeKind::kOr:
      return evaluate(*node.lhs, assignment) || evaluate(*node.rhs, assignment);
  }
  throw ftl::Error("expression: corrupt AST");
}

}  // namespace

ParsedFunction parse_expression(std::string_view text,
                                std::vector<std::string> var_names) {
  const bool fixed = !var_names.empty();
  Parser parser(text, std::move(var_names), fixed);
  const NodePtr root = parser.parse();
  ParsedFunction out;
  out.var_names = parser.take_names();
  out.table = TruthTable::from_function(
      static_cast<int>(out.var_names.size()),
      [&root](std::uint64_t m) { return evaluate(*root, m); });
  return out;
}

}  // namespace ftl::logic
