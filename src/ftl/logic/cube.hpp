#pragma once
// Product terms (cubes) over up to 64 Boolean variables.
//
// A cube is a conjunction of literals; each variable appears positively,
// negatively, or not at all. Cubes are the currency of the lattice synthesis
// path: the Altun–Riedel method intersects products of a function with
// products of its dual to pick the literal placed on each lattice cell.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ftl::logic {

/// A single literal: variable index plus polarity.
struct Literal {
  int var = 0;
  bool positive = true;

  friend bool operator==(const Literal&, const Literal&) = default;
};

/// Conjunction of literals over variables 0..63. The empty cube is the
/// constant-1 product.
class Cube {
 public:
  static constexpr int kMaxVars = 64;

  Cube() = default;

  /// Builds a cube from literals; throws ftl::Error on a contradictory pair
  /// (x and !x) or an out-of-range variable index.
  static Cube from_literals(const std::vector<Literal>& literals);

  /// Adds one literal; throws ftl::Error on contradiction/out-of-range.
  void add(Literal lit);

  /// True when the variable appears (either polarity).
  bool mentions(int var) const;

  /// Polarity of `var` if present.
  std::optional<bool> polarity(int var) const;

  /// Number of literals.
  int size() const;

  bool empty() const { return pos_ == 0 && neg_ == 0; }

  std::uint64_t positive_mask() const { return pos_; }
  std::uint64_t negative_mask() const { return neg_; }

  /// Evaluates under `assignment`, where bit v gives the value of variable v.
  bool evaluate(std::uint64_t assignment) const;

  /// True when every literal of *this also appears in `other` — i.e. *this
  /// covers (absorbs) `other` as a product term.
  bool covers(const Cube& other) const;

  /// Literals common to both cubes (same variable, same polarity).
  std::vector<Literal> shared_literals(const Cube& other) const;

  /// All literals in ascending variable order.
  std::vector<Literal> literals() const;

  /// Renders with the given variable names, e.g. "a b' c". `names` may be
  /// empty, in which case x0, x1, ... are used.
  std::string to_string(const std::vector<std::string>& names = {}) const;

  friend bool operator==(const Cube&, const Cube&) = default;

  /// Lexicographic order for canonical SOP sorting.
  friend auto operator<=>(const Cube& a, const Cube& b) = default;

 private:
  std::uint64_t pos_ = 0;
  std::uint64_t neg_ = 0;
};

}  // namespace ftl::logic
