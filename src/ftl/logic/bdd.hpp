#pragma once
// Reduced ordered binary decision diagrams.
//
// Truth tables cap the logic layer at 26 variables; the synthesis
// literature the paper builds on (refs [2]-[4], [13]) works on functions
// well beyond that. This is a compact ROBDD engine — unique table, ITE with
// memoization, complement/cofactor/compose-free API — plus the two
// operations lattice synthesis needs: the Boolean dual and Minato–Morreale
// ISOP extraction directly on BDDs.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ftl/logic/sop.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::logic {

/// Handle to a BDD node owned by a BddManager.
using BddRef = std::int32_t;

/// ROBDD manager with a fixed variable order x0 < x1 < ... (index order).
class BddManager {
 public:
  explicit BddManager(int num_vars);

  int num_vars() const { return num_vars_; }

  BddRef zero() const { return kZero; }
  BddRef one() const { return kOne; }
  BddRef variable(int var);

  // --- Boolean operations (fully reduced, memoized) ----------------------
  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef land(BddRef f, BddRef g) { return ite(f, g, kZero); }
  BddRef lor(BddRef f, BddRef g) { return ite(f, kOne, g); }
  BddRef lxor(BddRef f, BddRef g);
  BddRef lnot(BddRef f) { return ite(f, kZero, kOne); }
  BddRef diff(BddRef f, BddRef g) { return ite(g, kZero, f); }  // f & !g

  /// Cofactor with variable `var` fixed to `value`.
  BddRef cofactor(BddRef f, int var, bool value);

  /// The Boolean dual f^D(x) = !f(!x).
  BddRef dual(BddRef f);

  // --- Queries -------------------------------------------------------------
  bool is_zero(BddRef f) const { return f == kZero; }
  bool is_one(BddRef f) const { return f == kOne; }

  /// Evaluates under `assignment` (bit v = value of variable v).
  bool evaluate(BddRef f, std::uint64_t assignment) const;

  /// Number of satisfying assignments over all num_vars() inputs.
  double sat_count(BddRef f);

  /// Live node count reachable from `f` (diagnostic).
  std::size_t node_count(BddRef f) const;

  /// True when the function depends on `var`.
  bool depends_on(BddRef f, int var);

  // --- Conversions ---------------------------------------------------------
  /// Builds a BDD from a truth table (num_vars <= 26).
  BddRef from_truth_table(const TruthTable& table);

  /// Builds a BDD from an SOP cover.
  BddRef from_sop(const Sop& sop);

  /// Expands to a truth table (requires num_vars <= 26).
  TruthTable to_truth_table(BddRef f) const;

  /// Minato–Morreale irredundant SOP of the interval [onset, onset|dc].
  Sop isop(BddRef onset, BddRef dontcare);
  Sop isop(BddRef f) { return isop(f, kZero); }

 private:
  static constexpr BddRef kZero = 0;
  static constexpr BddRef kOne = 1;

  struct Node {
    int var;      // branching variable (num_vars_ for terminals)
    BddRef low;   // var = 0 child
    BddRef high;  // var = 1 child
  };

  struct TripleHash {
    std::size_t operator()(const std::array<std::int64_t, 3>& k) const {
      std::size_t h = 1469598103934665603ull;
      for (std::int64_t v : k) {
        h ^= static_cast<std::size_t>(v);
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  BddRef make(int var, BddRef low, BddRef high);
  int var_of(BddRef f) const { return nodes_[static_cast<std::size_t>(f)].var; }
  int top_var(BddRef f, BddRef g, BddRef h) const;

  struct IsopResult {
    std::vector<Cube> cover;
    BddRef function;
  };
  IsopResult isop_interval(BddRef lower, BddRef upper);

  int num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<std::array<std::int64_t, 3>, BddRef, TripleHash> unique_;
  std::unordered_map<std::array<std::int64_t, 3>, BddRef, TripleHash> ite_cache_;
  std::unordered_map<BddRef, BddRef> dual_cache_;
  std::unordered_map<BddRef, double> count_cache_;
};

}  // namespace ftl::logic
