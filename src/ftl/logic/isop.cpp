#include "ftl/logic/isop.hpp"

#include "ftl/util/error.hpp"

namespace ftl::logic {
namespace {

struct IsopResult {
  std::vector<Cube> cover;
  TruthTable function;  // the Boolean function of the cover
};

/// Core recursion: returns a cover F with L <= F <= U (as sets of minterms).
IsopResult isop_interval(const TruthTable& lower, const TruthTable& upper,
                         int from_var) {
  const int n = lower.num_vars();
  if (lower.is_zero()) {
    return {{}, TruthTable::constant(n, false)};
  }
  if (upper.is_one()) {
    return {{Cube{}}, TruthTable::constant(n, true)};
  }

  // Find a variable either bound depends on. One must exist: otherwise both
  // are constants, and the constant cases were handled above.
  int var = -1;
  for (int v = from_var; v < n; ++v) {
    if (lower.depends_on(v) || upper.depends_on(v)) {
      var = v;
      break;
    }
  }
  FTL_ENSURES(var >= 0);

  const TruthTable l0 = lower.cofactor(var, false);
  const TruthTable l1 = lower.cofactor(var, true);
  const TruthTable u0 = upper.cofactor(var, false);
  const TruthTable u1 = upper.cofactor(var, true);

  // Minterms that can only be covered by a cube containing the literal.
  IsopResult r0 = isop_interval(l0 & ~u1, u0, var + 1);
  IsopResult r1 = isop_interval(l1 & ~u0, u1, var + 1);

  // Onset still uncovered after the literal cubes; cover it variable-free.
  const TruthTable remaining = (l0 & ~r0.function) | (l1 & ~r1.function);
  IsopResult r2 = isop_interval(remaining, u0 & u1, var + 1);

  IsopResult out;
  out.cover.reserve(r0.cover.size() + r1.cover.size() + r2.cover.size());
  for (Cube& c : r0.cover) {
    c.add({var, false});
    out.cover.push_back(std::move(c));
  }
  for (Cube& c : r1.cover) {
    c.add({var, true});
    out.cover.push_back(std::move(c));
  }
  for (Cube& c : r2.cover) out.cover.push_back(std::move(c));

  const TruthTable xv = TruthTable::variable(n, var);
  out.function = (~xv & r0.function) | (xv & r1.function) | r2.function;
  return out;
}

}  // namespace

Sop isop(const TruthTable& onset, const TruthTable& dontcare) {
  FTL_EXPECTS(onset.num_vars() == dontcare.num_vars());
  IsopResult r = isop_interval(onset, onset | dontcare, 0);
  FTL_ENSURES(onset.implies(r.function));
  FTL_ENSURES(r.function.implies(onset | dontcare));
  Sop out(onset.num_vars(), std::move(r.cover));
  out.canonicalize();
  return out;
}

Sop isop(const TruthTable& function) {
  return isop(function, TruthTable::constant(function.num_vars(), false));
}

Sop isop_of_dual(const TruthTable& function) {
  return isop(function.dual());
}

}  // namespace ftl::logic
