#pragma once
// Dense truth tables over up to 26 variables.
//
// Truth tables are the semantic ground truth in this project: lattice
// realizations are checked against them, ISOP extraction runs on them, and
// the Boolean dual needed by the Altun–Riedel synthesis (f^D(x) = ¬f(¬x)) is
// a cheap bit permutation here.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ftl/logic/sop.hpp"

namespace ftl::logic {

/// Truth table of a Boolean function of `num_vars` inputs. Bit i of the
/// table is f(i) where bit v of i is the value of variable v.
class TruthTable {
 public:
  static constexpr int kMaxVars = 26;

  TruthTable() = default;

  /// Constant-0 function of `num_vars` inputs.
  explicit TruthTable(int num_vars);

  /// Builds from a per-minterm callback.
  static TruthTable from_function(int num_vars,
                                  const std::function<bool(std::uint64_t)>& fn);

  /// Builds from an SOP cover.
  static TruthTable from_sop(const Sop& sop);

  /// Builds from the low 2^num_vars bits of `bits` (num_vars <= 6).
  static TruthTable from_bits(int num_vars, std::uint64_t bits);

  /// Builds from 64-minterm words (bit k of words[i] = f(64*i + k)). The
  /// vector must hold exactly word_count(num_vars) entries; tail bits beyond
  /// 2^num_vars are masked off. This is the zero-copy sink for the bitsliced
  /// lattice evaluator, whose 64-assignment blocks are exactly these words.
  static TruthTable from_words(int num_vars, std::vector<std::uint64_t> words);

  static TruthTable constant(int num_vars, bool value);

  /// Projection onto a single variable.
  static TruthTable variable(int num_vars, int var);

  int num_vars() const { return num_vars_; }
  std::uint64_t num_minterms() const { return std::uint64_t{1} << num_vars_; }

  bool get(std::uint64_t minterm) const;
  void set(std::uint64_t minterm, bool value);

  /// Number of 64-bit words backing a table of `num_vars` inputs.
  static std::size_t word_count(int num_vars);

  /// 64-minterm word i (bit k = f(64*i + k)); tail bits are always 0.
  std::uint64_t word(std::size_t i) const;

  bool is_zero() const;
  bool is_one() const;
  std::uint64_t count_ones() const;

  /// True when the function's value depends on variable `var`.
  bool depends_on(int var) const;

  /// Cofactor with `var` fixed to `value`; the result no longer depends on
  /// `var` (the fixed slice is replicated across both halves).
  TruthTable cofactor(int var, bool value) const;

  /// Boolean dual: f^D(x) = ¬f(¬x).
  TruthTable dual() const;

  /// Input/output relabeling: the returned table R satisfies
  ///   R(x) = negate_output ^ f(y)   with   y[j] = x[perm[j]] ^ neg bit j,
  /// i.e. input j of this function is driven by variable perm[j] of the
  /// result, optionally complemented. `perm` must be a permutation of
  /// [0, num_vars). This is the reference semantics for the NPN machinery
  /// in ftl::library, which keeps a word-level fast path of its own.
  TruthTable transformed(const std::vector<int>& perm,
                         std::uint32_t input_negations,
                         bool negate_output) const;

  TruthTable operator~() const;
  TruthTable operator&(const TruthTable& rhs) const;
  TruthTable operator|(const TruthTable& rhs) const;
  TruthTable operator^(const TruthTable& rhs) const;

  friend bool operator==(const TruthTable& a, const TruthTable& b);

  /// True when f(x)=1 implies g(x)=1 for all x.
  bool implies(const TruthTable& g) const;

  /// Hex rendering (LSB minterm last), for diagnostics.
  std::string to_hex() const;

 private:
  void mask_tail();

  int num_vars_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ftl::logic
