#pragma once
// Boolean expression parser for examples and tests.
//
// Grammar (whitespace-insensitive except as a product separator):
//   expr   := term ('+' | '|') term ...
//   term   := factor (('*' | '&' | whitespace) factor) ...
//   factor := '!' factor | atom | atom '\''...     (postfix ' = complement)
//   atom   := identifier | '0' | '1' | '(' expr ')'
//   identifier := [A-Za-z][A-Za-z0-9_]*
//
// Example: "a b' c + a' b c' " or "x1*x2 + !x3".

#include <string>
#include <string_view>
#include <vector>

#include "ftl/logic/truth_table.hpp"

namespace ftl::logic {

struct ParsedFunction {
  TruthTable table;
  std::vector<std::string> var_names;  ///< index = variable index in table
};

/// Parses `text` into a truth table. When `var_names` is non-empty it fixes
/// the variable ordering (unknown identifiers are an error); otherwise
/// variables are numbered in order of first appearance.
/// Throws ftl::Error on syntax errors or more than 26 variables.
ParsedFunction parse_expression(std::string_view text,
                                std::vector<std::string> var_names = {});

}  // namespace ftl::logic
