#include "ftl/logic/cube.hpp"

#include <bit>

#include "ftl/util/error.hpp"

namespace ftl::logic {

Cube Cube::from_literals(const std::vector<Literal>& literals) {
  Cube c;
  for (const Literal& lit : literals) c.add(lit);
  return c;
}

void Cube::add(Literal lit) {
  if (lit.var < 0 || lit.var >= kMaxVars) {
    throw ftl::Error("Cube: variable index out of range: " + std::to_string(lit.var));
  }
  const std::uint64_t bit = std::uint64_t{1} << lit.var;
  if (lit.positive) {
    if (neg_ & bit) throw ftl::Error("Cube: contradictory literal for variable " + std::to_string(lit.var));
    pos_ |= bit;
  } else {
    if (pos_ & bit) throw ftl::Error("Cube: contradictory literal for variable " + std::to_string(lit.var));
    neg_ |= bit;
  }
}

bool Cube::mentions(int var) const {
  FTL_EXPECTS(var >= 0 && var < kMaxVars);
  const std::uint64_t bit = std::uint64_t{1} << var;
  return ((pos_ | neg_) & bit) != 0;
}

std::optional<bool> Cube::polarity(int var) const {
  FTL_EXPECTS(var >= 0 && var < kMaxVars);
  const std::uint64_t bit = std::uint64_t{1} << var;
  if (pos_ & bit) return true;
  if (neg_ & bit) return false;
  return std::nullopt;
}

int Cube::size() const {
  return std::popcount(pos_) + std::popcount(neg_);
}

bool Cube::evaluate(std::uint64_t assignment) const {
  return (assignment & pos_) == pos_ && (~assignment & neg_) == neg_;
}

bool Cube::covers(const Cube& other) const {
  return (pos_ & other.pos_) == pos_ && (neg_ & other.neg_) == neg_;
}

std::vector<Literal> Cube::shared_literals(const Cube& other) const {
  std::vector<Literal> out;
  std::uint64_t both_pos = pos_ & other.pos_;
  std::uint64_t both_neg = neg_ & other.neg_;
  for (int v = 0; v < kMaxVars; ++v) {
    const std::uint64_t bit = std::uint64_t{1} << v;
    if (both_pos & bit) out.push_back({v, true});
    if (both_neg & bit) out.push_back({v, false});
  }
  return out;
}

std::vector<Literal> Cube::literals() const {
  std::vector<Literal> out;
  for (int v = 0; v < kMaxVars; ++v) {
    const std::uint64_t bit = std::uint64_t{1} << v;
    if (pos_ & bit) out.push_back({v, true});
    if (neg_ & bit) out.push_back({v, false});
  }
  return out;
}

std::string Cube::to_string(const std::vector<std::string>& names) const {
  if (empty()) return "1";
  std::string out;
  for (const Literal& lit : literals()) {
    if (!out.empty()) out += ' ';
    if (static_cast<std::size_t>(lit.var) < names.size()) {
      out += names[static_cast<std::size_t>(lit.var)];
    } else {
      out += 'x' + std::to_string(lit.var);
    }
    if (!lit.positive) out += '\'';
  }
  return out;
}

}  // namespace ftl::logic
