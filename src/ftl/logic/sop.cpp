#include "ftl/logic/sop.hpp"

#include <algorithm>

#include "ftl/util/error.hpp"

namespace ftl::logic {

Sop::Sop(int num_vars) : num_vars_(num_vars) {
  FTL_EXPECTS(num_vars >= 0 && num_vars <= Cube::kMaxVars);
}

Sop::Sop(int num_vars, std::vector<Cube> cubes) : Sop(num_vars) {
  for (Cube& c : cubes) add(std::move(c));
}

void Sop::add(Cube cube) {
  const std::uint64_t used = cube.positive_mask() | cube.negative_mask();
  const std::uint64_t allowed =
      num_vars_ >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << num_vars_) - 1);
  if ((used & ~allowed) != 0) {
    throw ftl::Error("Sop: cube mentions a variable >= num_vars");
  }
  cubes_.push_back(std::move(cube));
}

bool Sop::evaluate(std::uint64_t assignment) const {
  for (const Cube& c : cubes_) {
    if (c.evaluate(assignment)) return true;
  }
  return false;
}

void Sop::absorb() {
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool absorbed = false;
    for (std::size_t j = 0; j < cubes_.size() && !absorbed; ++j) {
      if (i == j) continue;
      if (cubes_[j].covers(cubes_[i])) {
        // Equal cubes absorb each other; keep only the first occurrence.
        if (cubes_[j] == cubes_[i]) {
          absorbed = j < i;
        } else {
          absorbed = true;
        }
      }
    }
    if (!absorbed) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

void Sop::canonicalize() {
  std::sort(cubes_.begin(), cubes_.end());
}

bool Sop::has_constant_one() const {
  return std::any_of(cubes_.begin(), cubes_.end(),
                     [](const Cube& c) { return c.empty(); });
}

std::string Sop::to_string(const std::vector<std::string>& names) const {
  if (cubes_.empty()) return "0";
  std::string out;
  for (const Cube& c : cubes_) {
    if (!out.empty()) out += " + ";
    out += c.to_string(names);
  }
  return out;
}

}  // namespace ftl::logic
