#pragma once
// Minato–Morreale irredundant sum-of-products extraction.
//
// The lattice synthesis of [Altun & Riedel, IEEE TC 2012] — which §II of the
// paper builds on — consumes an ISOP of the target function f and an ISOP of
// its dual f^D. This implements the classic recursive interval algorithm
// ISOP(L, U) producing a cover F of primes with L <= F <= U.

#include "ftl/logic/sop.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::logic {

/// Irredundant SOP cover of `onset`, optionally widened by a don't-care set.
/// The result evaluates to 1 on every onset minterm, to 0 everywhere outside
/// onset ∪ dontcare, and no cube can be dropped without uncovering onset.
Sop isop(const TruthTable& onset, const TruthTable& dontcare);

/// ISOP of a completely specified function.
Sop isop(const TruthTable& function);

/// ISOP of the Boolean dual f^D(x) = ¬f(¬x).
Sop isop_of_dual(const TruthTable& function);

}  // namespace ftl::logic
