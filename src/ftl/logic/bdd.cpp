#include "ftl/logic/bdd.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::logic {

BddManager::BddManager(int num_vars) : num_vars_(num_vars) {
  FTL_EXPECTS(num_vars >= 0 && num_vars <= Cube::kMaxVars);
  // Terminals: var index num_vars_ sorts below every decision node.
  nodes_.push_back({num_vars_, kZero, kZero});  // 0
  nodes_.push_back({num_vars_, kOne, kOne});    // 1
}

BddRef BddManager::make(int var, BddRef low, BddRef high) {
  if (low == high) return low;  // redundant test elimination
  const std::array<std::int64_t, 3> key{var, low, high};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::variable(int var) {
  FTL_EXPECTS(var >= 0 && var < num_vars_);
  return make(var, kZero, kOne);
}

int BddManager::top_var(BddRef f, BddRef g, BddRef h) const {
  return std::min({var_of(f), var_of(g), var_of(h)});
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;

  const std::array<std::int64_t, 3> key{f, g, h};
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int v = top_var(f, g, h);
  const auto cof = [&](BddRef x, bool value) {
    const Node& n = nodes_[static_cast<std::size_t>(x)];
    if (n.var != v) return x;  // x does not test v at the top
    return value ? n.high : n.low;
  };
  const BddRef low = ite(cof(f, false), cof(g, false), cof(h, false));
  const BddRef high = ite(cof(f, true), cof(g, true), cof(h, true));
  const BddRef result = make(v, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::lxor(BddRef f, BddRef g) { return ite(f, lnot(g), g); }

BddRef BddManager::cofactor(BddRef f, int var, bool value) {
  FTL_EXPECTS(var >= 0 && var < num_vars_);
  if (f == kZero || f == kOne) return f;
  // Copy the node: the recursive calls below may grow nodes_ and a
  // reference into the vector would dangle.
  const Node n = nodes_[static_cast<std::size_t>(f)];
  if (n.var > var) return f;           // f independent of var
  if (n.var == var) return value ? n.high : n.low;
  // n.var < var: rebuild both branches.
  return make(n.var, cofactor(n.low, var, value), cofactor(n.high, var, value));
}

BddRef BddManager::dual(BddRef f) {
  // f^D(x) = !f(!x). Complementing all inputs swaps every node's children;
  // fold the outer negation into the same recursion:
  //   D(terminal c) = !c ; D(node(v, lo, hi)) = node(v, D(hi), D(lo)).
  if (f == kZero) return kOne;
  if (f == kOne) return kZero;
  const auto it = dual_cache_.find(f);
  if (it != dual_cache_.end()) return it->second;
  // Copy (recursion may reallocate nodes_).
  const Node n = nodes_[static_cast<std::size_t>(f)];
  const BddRef result = make(n.var, dual(n.high), dual(n.low));
  dual_cache_.emplace(f, result);
  return result;
}

bool BddManager::evaluate(BddRef f, std::uint64_t assignment) const {
  while (f != kZero && f != kOne) {
    const Node& n = nodes_[static_cast<std::size_t>(f)];
    f = ((assignment >> n.var) & 1) != 0 ? n.high : n.low;
  }
  return f == kOne;
}

double BddManager::sat_count(BddRef f) {
  // Work in satisfying *fractions*: frac(node) = (frac(low)+frac(high))/2
  // is exact regardless of skipped levels, because skipped variables are
  // free on both sides.
  const std::function<double(BddRef)> frac = [&](BddRef x) -> double {
    if (x == kZero) return 0.0;
    if (x == kOne) return 1.0;
    const auto it = count_cache_.find(x);
    if (it != count_cache_.end()) return it->second;
    const Node& n = nodes_[static_cast<std::size_t>(x)];
    const double result = 0.5 * (frac(n.low) + frac(n.high));
    count_cache_.emplace(x, result);
    return result;
  };
  return frac(f) * std::pow(2.0, num_vars_);
}

std::size_t BddManager::node_count(BddRef f) const {
  std::vector<BddRef> stack{f};
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t count = 0;
  while (!stack.empty()) {
    const BddRef x = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(x)]) continue;
    seen[static_cast<std::size_t>(x)] = true;
    ++count;
    const Node& n = nodes_[static_cast<std::size_t>(x)];
    if (x != kZero && x != kOne) {
      stack.push_back(n.low);
      stack.push_back(n.high);
    }
  }
  return count;
}

bool BddManager::depends_on(BddRef f, int var) {
  return cofactor(f, var, false) != cofactor(f, var, true);
}

BddRef BddManager::from_truth_table(const TruthTable& table) {
  FTL_EXPECTS(table.num_vars() == num_vars_);
  // Shannon expansion with x0 decided at the top of the diagram; deeper
  // recursion levels decide higher variables, so every node's children test
  // strictly larger variables (the ROBDD order invariant). Reduction and
  // sharing fall out of the unique table.
  const std::function<BddRef(int, std::uint64_t)> shannon =
      [&](int var, std::uint64_t fixed_bits) -> BddRef {
    if (var == num_vars_) {
      return table.get(fixed_bits) ? kOne : kZero;
    }
    const BddRef low = shannon(var + 1, fixed_bits);
    const BddRef high = shannon(var + 1, fixed_bits | (std::uint64_t{1} << var));
    return make(var, low, high);
  };
  return shannon(0, 0);
}

BddRef BddManager::from_sop(const Sop& sop) {
  FTL_EXPECTS(sop.num_vars() <= num_vars_);
  BddRef acc = kZero;
  for (const Cube& cube : sop.cubes()) {
    BddRef product = kOne;
    for (const Literal& lit : cube.literals()) {
      const BddRef v = variable(lit.var);
      product = land(product, lit.positive ? v : lnot(v));
    }
    acc = lor(acc, product);
  }
  return acc;
}

TruthTable BddManager::to_truth_table(BddRef f) const {
  FTL_EXPECTS(num_vars_ <= TruthTable::kMaxVars);
  TruthTable t(num_vars_);
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
    if (evaluate(f, m)) t.set(m, true);
  }
  return t;
}

BddManager::IsopResult BddManager::isop_interval(BddRef lower, BddRef upper) {
  if (lower == kZero) return {{}, kZero};
  if (upper == kOne) return {{Cube{}}, kOne};

  // Split on the top variable of the pair.
  const int v = std::min(var_of(lower), var_of(upper));
  FTL_ENSURES(v < num_vars_);
  const auto cof = [&](BddRef x, bool value) {
    const Node& n = nodes_[static_cast<std::size_t>(x)];
    if (n.var != v) return x;
    return value ? n.high : n.low;
  };
  const BddRef l0 = cof(lower, false);
  const BddRef l1 = cof(lower, true);
  const BddRef u0 = cof(upper, false);
  const BddRef u1 = cof(upper, true);

  IsopResult r0 = isop_interval(diff(l0, u1), u0);
  IsopResult r1 = isop_interval(diff(l1, u0), u1);
  const BddRef remaining = lor(diff(l0, r0.function), diff(l1, r1.function));
  IsopResult r2 = isop_interval(remaining, land(u0, u1));

  IsopResult out;
  out.cover.reserve(r0.cover.size() + r1.cover.size() + r2.cover.size());
  for (Cube& c : r0.cover) {
    c.add({v, false});
    out.cover.push_back(std::move(c));
  }
  for (Cube& c : r1.cover) {
    c.add({v, true});
    out.cover.push_back(std::move(c));
  }
  for (Cube& c : r2.cover) out.cover.push_back(std::move(c));

  const BddRef xv = variable(v);
  out.function = lor(ite(xv, r1.function, r0.function), r2.function);
  return out;
}

Sop BddManager::isop(BddRef onset, BddRef dontcare) {
  IsopResult r = isop_interval(onset, lor(onset, dontcare));
  // The cover realizes a function between onset and onset|dc.
  FTL_ENSURES(is_zero(diff(onset, r.function)));
  FTL_ENSURES(is_zero(diff(r.function, lor(onset, dontcare))));
  Sop out(num_vars_, std::move(r.cover));
  out.canonicalize();
  return out;
}

}  // namespace ftl::logic
