#pragma once
// SAT-backed lattice audits (FTL-L006/L007/L008): the certified siblings of
// check_lattice's semantic passes, built on the embedded CDCL solver instead
// of truth-table re-realization, so they keep working past the ~12-variable
// wall where re-realizing one sub-lattice per row/column stops being viable.
//
// Every pass is an UNSAT argument over the EXACT connectivity encodings
// (sat::encode_reach_exact / encode_connected_exact — iff-defined, so both
// SAT and UNSAT answers are meaningful), and every finding is justified by
// an UNSAT core mapped back to lattice cells: each cell's semantics enters
// the formula behind its own assumption literal ("guard"), the solver's
// failed-assumption set selects the guards that actually participated in
// the contradiction, and a greedy deletion pass shrinks that set further.
// The finding message names those cells — a minimal explanation a reviewer
// can audit by hand instead of a bare verdict.
//
//   FTL-L007  warning  switch can never conduct: no input assignment puts
//                      the cell on a conducting top-bottom path. Stronger
//                      than FTL-L001 (structural blockage by constant-0
//                      cells), which is skipped here to avoid duplicates —
//                      L007 catches cells whose neighborhood demands x and
//                      ¬x conduct at once.
//   FTL-L006  note     row/column removable: an exact-connectivity XOR
//                      miter between the lattice and the lattice with the
//                      row/column deleted is UNSAT, so no assignment
//                      distinguishes them. The certified analogue of
//                      FTL-L004.
//   FTL-L008  note     a strictly smaller lattice realizes the same
//                      function, found by lattice::synth_sat on the
//                      (rows-1)×cols and rows×(cols-1) shapes.
//
// With `certify`, each solver runs with DRAT proof logging and every UNSAT
// verdict consumed by the audit is validated by the embedded checker; a
// rejected proof downgrades nothing silently — it surfaces as FTL-E003 on
// the same object.

#include <cstdint>

#include "ftl/check/diagnostics.hpp"
#include "ftl/lattice/lattice.hpp"

namespace ftl::check {

struct LatticeSatAuditOptions {
  /// Log DRAT proofs and run the embedded checker on every UNSAT verdict;
  /// failures surface as FTL-E003 (see LatticeSatAudit counters).
  bool certify = false;
  /// Conflict budget per individual SAT query (L006/L007 and their core
  /// minimization solves). A query that exhausts it is dropped without a
  /// finding — the audit never reports anything it did not prove.
  std::int64_t max_conflicts = 200'000;
  /// Run the FTL-L008 smaller-lattice search (two synth_sat calls on the
  /// realized function). The one pass that still needs a truth table, hence
  /// its own variable cap below.
  bool suboptimal = true;
  int suboptimal_max_vars = 16;  ///< skip L008 above this variable count
  std::int64_t suboptimal_conflicts = 100'000;  ///< synth_sat budget (L008)
};

struct LatticeSatAudit {
  Report report;
  int queries = 0;          ///< top-level audit queries solved
  int unsat_verdicts = 0;   ///< UNSAT answers consumed (incl. minimization)
  int certified_unsat = 0;  ///< ... whose DRAT proof passed the checker
  int proof_failures = 0;   ///< ... whose DRAT proof was rejected
  double proof_check_ms = 0.0;  ///< total embedded-checker wall-clock
};

/// Runs the SAT-backed audits on one lattice. Degenerate inputs (no rows or
/// columns, zero variables, or out-of-range cell literals — FTL-L003
/// territory) return an empty audit; run check_lattice first for those.
LatticeSatAudit audit_lattice_sat(const lattice::Lattice& lat,
                                  const LatticeSatAuditOptions& options = {});

}  // namespace ftl::check
