#pragma once
// Structural checks on switching lattices (FTL-L001..L005): cells that can
// never participate in a top-to-bottom path, declared-but-unplaced
// variables, out-of-range literals, and — on lattices small enough to
// evaluate semantically — removable rows/columns and constant functions.

#include "ftl/check/diagnostics.hpp"
#include "ftl/lattice/lattice.hpp"

namespace ftl::check {

struct LatticeCheckOptions {
  /// Run the semantic passes (FTL-L004 redundant row/column, FTL-L005
  /// constant function), which evaluate the lattice over all assignments.
  bool semantic = true;
  /// Variable-count ceiling for the semantic passes (2^n evaluations per
  /// candidate); lattices above it get the structural passes only.
  int max_semantic_vars = 12;
};

/// Runs the lattice passes. Structural findings are warnings/errors;
/// semantic redundancy findings are notes (a deliberately padded lattice is
/// legal — the paper's 3x3 XOR benches carry constant-0 blockers).
Report check_lattice(const lattice::Lattice& lattice,
                     const LatticeCheckOptions& options = {});

}  // namespace ftl::check
