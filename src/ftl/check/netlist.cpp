#include "ftl/check/netlist.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "ftl/util/strings.hpp"
#include "ftl/util/units.hpp"

namespace ftl::check {
namespace {

using spice::Circuit;
using spice::DeviceView;
using util::SourceLoc;

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Union-find over MNA node indices, with slot 0 reserved for ground
/// (Circuit::kGround is -1, so node i lives in slot i + 1).
class Dsu {
 public:
  explicit Dsu(int size) : parent_(size) {
    for (int i = 0; i < size; ++i) parent_[i] = i;
  }

  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns false when a and b were already connected.
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

SourceLoc loc_of(const DeviceLocations* locations, const std::string& name) {
  if (!locations) return {};
  const auto it = locations->find(name);
  return it == locations->end() ? SourceLoc{} : it->second;
}

/// FTL-N005/N006: per-device value and geometry sanity.
void check_values(const std::string& name, const DeviceView& view,
                  const NetlistCheckOptions& options, SourceLoc loc,
                  Report& report) {
  switch (view.kind) {
    case DeviceView::Kind::kResistor:
      if (view.value <= 0.0) {
        report.add("FTL-N005", Severity::kError, name,
                   "resistance of '" + name + "' must be positive (got " +
                       num(view.value) + " ohm)",
                   loc);
      } else if (view.value < options.resistor_min ||
                 view.value > options.resistor_max) {
        report.add("FTL-N006", Severity::kWarning, name,
                   "resistance of '" + name + "' (" + num(view.value) +
                       " ohm) is outside the plausible band [" +
                       num(options.resistor_min) + ", " +
                       num(options.resistor_max) +
                       "]; missing engineering suffix?",
                   loc);
      }
      break;
    case DeviceView::Kind::kCapacitor:
      if (view.value <= 0.0) {
        report.add("FTL-N005", Severity::kError, name,
                   "capacitance of '" + name + "' must be positive (got " +
                       num(view.value) + " F)",
                   loc);
      } else if (view.value > options.capacitor_max) {
        report.add("FTL-N006", Severity::kWarning, name,
                   "capacitance of '" + name + "' (" + num(view.value) +
                       " F) exceeds the plausible maximum " +
                       num(options.capacitor_max) +
                       "; missing engineering suffix?",
                   loc);
      }
      break;
    case DeviceView::Kind::kMosfet:
      if (view.width <= 0.0 || view.length <= 0.0) {
        report.add("FTL-N005", Severity::kError, name,
                   "'" + name + "' has non-positive geometry (W=" +
                       num(view.width) + ", L=" + num(view.length) + ")",
                   loc);
      } else if (view.width < options.geometry_min ||
                 view.width > options.geometry_max ||
                 view.length < options.geometry_min ||
                 view.length > options.geometry_max) {
        report.add("FTL-N006", Severity::kWarning, name,
                   "'" + name + "' geometry (W=" + num(view.width) + ", L=" +
                       num(view.length) + ") is outside the plausible band [" +
                       num(options.geometry_min) + ", " +
                       num(options.geometry_max) +
                       "] metres; missing engineering suffix?",
                   loc);
      }
      break;
    case DeviceView::Kind::kVoltageSource:
    case DeviceView::Kind::kCurrentSource:
    case DeviceView::Kind::kOther:
      break;
  }
}

/// Maximum bipartite matching (Kuhn's algorithm) between MNA rows and
/// columns of the structural pattern. Returns, for each row, the matched
/// column or -1. O(V*E) on patterns that are a handful of entries per row.
std::vector<int> match_rows(const std::vector<std::vector<int>>& adj) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> col_match(n, -1);  // column -> row
  std::vector<int> row_match(n, -1);  // row -> column
  std::vector<char> visited(n, 0);

  // Iterative DFS augmenting path (recursion depth could reach the unknown
  // count on long source chains).
  struct Frame {
    int row;
    std::size_t next_edge;
  };
  const auto try_augment = [&](int start) -> bool {
    std::vector<Frame> stack = {{start, 0}};
    std::vector<std::pair<int, int>> path;  // (row, col) tentative pairs
    while (!stack.empty()) {
      Frame& frame = stack.back();
      bool advanced = false;
      while (frame.next_edge < adj[frame.row].size()) {
        const int col = adj[frame.row][frame.next_edge++];
        if (visited[col]) continue;
        visited[col] = 1;
        if (col_match[col] == -1) {
          // Free column: commit the whole alternating path.
          path.emplace_back(frame.row, col);
          for (const auto& [r, c] : path) {
            col_match[c] = r;
            row_match[r] = c;
          }
          return true;
        }
        path.emplace_back(frame.row, col);
        stack.push_back({col_match[col], 0});
        advanced = true;
        break;
      }
      if (!advanced) {
        stack.pop_back();
        if (!path.empty()) path.pop_back();
      }
    }
    return false;
  };

  for (int row = 0; row < n; ++row) {
    if (adj[row].empty()) continue;
    std::fill(visited.begin(), visited.end(), 0);
    try_augment(row);
  }
  return row_match;
}

}  // namespace

Report check_circuit(const Circuit& circuit, const NetlistCheckOptions& options,
                     const DeviceLocations* locations) {
  Report report;
  const int node_count = circuit.node_count();

  struct Entry {
    const spice::Device* device;
    DeviceView view;
    SourceLoc loc;
  };
  std::vector<Entry> entries;
  entries.reserve(circuit.devices().size());
  bool has_opaque = false;
  for (const auto& device : circuit.devices()) {
    Entry entry{device.get(), device->view(), loc_of(locations, device->name())};
    if (entry.view.kind == DeviceView::Kind::kOther) has_opaque = true;
    entries.push_back(std::move(entry));
  }

  // FTL-N004: duplicate component names. Circuit::add accepts duplicates
  // for programmatic construction; the parser pre-pass catches them by
  // text, this catches them on assembled circuits.
  {
    std::map<std::string, int> name_count;
    for (const Entry& entry : entries) {
      if (++name_count[util::to_lower(entry.device->name())] == 2) {
        report.add("FTL-N004", Severity::kError, entry.device->name(),
                   "component name '" + entry.device->name() +
                       "' is used more than once",
                   entry.loc);
      }
    }
  }

  // FTL-N005/N006.
  for (const Entry& entry : entries) {
    check_values(entry.device->name(), entry.view, options, entry.loc, report);
  }

  // Terminal degrees and a representative device per node, for messages.
  std::vector<int> degree(node_count, 0);
  std::vector<const Entry*> touching(node_count, nullptr);
  for (const Entry& entry : entries) {
    for (const int n : entry.view.nodes) {
      if (n < 0 || n >= node_count) continue;
      ++degree[n];
      if (!touching[n]) touching[n] = &entry;
    }
  }

  // FTL-N001: dangling nodes. A node seen by exactly one device terminal
  // carries no current and usually marks a typo in a node name. Warning,
  // not error: a resistor to a probe-only node is legal (if pointless).
  for (int n = 0; n < node_count; ++n) {
    if (degree[n] != 1) continue;
    report.add("FTL-N001", Severity::kWarning, circuit.node_name(n),
               "node '" + circuit.node_name(n) +
                   "' is connected to only one device terminal (on '" +
                   touching[n]->device->name() + "')",
               touching[n]->loc);
  }

  // FTL-N002: DC reachability. Union nodes across every DC couple; any
  // node component not containing ground has a floating DC potential and
  // the MNA matrix is singular.
  std::vector<char> no_dc_path(node_count, 0);
  {
    Dsu dsu(node_count + 1);
    for (const Entry& entry : entries) {
      for (const auto& [a, b] : entry.view.dc_couples) {
        dsu.unite(a + 1, b + 1);
      }
    }
    const int ground = dsu.find(0);
    for (int n = 0; n < node_count; ++n) {
      if (degree[n] == 0) continue;  // never referenced; nothing to solve
      if (dsu.find(n + 1) == ground) continue;
      no_dc_path[n] = 1;
      report.add("FTL-N002", Severity::kError, circuit.node_name(n),
                 "node '" + circuit.node_name(n) +
                     "' has no DC path to ground (only capacitors or "
                     "current sources reach it)",
                 touching[n] ? touching[n]->loc : SourceLoc{});
    }
  }

  // FTL-N003: voltage-source loops. Union over V-source terminal pairs
  // only; a source whose terminals are already connected closes a loop of
  // ideal sources, which pins the same potential difference twice.
  {
    Dsu dsu(node_count + 1);
    for (const Entry& entry : entries) {
      if (entry.view.kind != DeviceView::Kind::kVoltageSource) continue;
      bool loop = false;
      for (const auto& [a, b] : entry.view.dc_couples) {
        if (!dsu.unite(a + 1, b + 1)) loop = true;
      }
      if (loop) {
        report.add("FTL-N003", Severity::kError, entry.device->name(),
                   "voltage source '" + entry.device->name() +
                       "' closes a loop of ideal voltage sources",
                   entry.loc);
      }
    }
  }

  // FTL-N007: symbolic MNA singularity. Build the structural sparsity
  // pattern from the views (no factorization) and run maximum bipartite
  // matching; an MNA row that cannot be matched to a pivot column means
  // the matrix is singular for every numeric value. Skipped when any
  // device is opaque (its stamps are unknown, so absence of pattern
  // entries proves nothing) or when a non-source device owns branches
  // (our offset bookkeeping below assumes V-source branches only).
  bool branches_understood = true;
  for (const Entry& entry : entries) {
    if (entry.device->branch_count() > 0 &&
        entry.view.kind != DeviceView::Kind::kVoltageSource) {
      branches_understood = false;
    }
  }
  if (options.structural_singularity && !has_opaque && branches_understood) {
    // Assign branch offsets locally, mirroring Circuit::prepare_unknowns
    // (device order), without mutating the circuit.
    int total = node_count;
    std::vector<int> branch_of(entries.size(), -1);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].device->branch_count() > 0) {
        branch_of[i] = total;
        total += entries[i].device->branch_count();
      }
    }

    std::vector<std::set<int>> pattern(total);
    const auto stamp = [&](int row, int col) {
      if (row >= 0 && col >= 0) pattern[row].insert(col);
    };
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const DeviceView& view = entries[i].view;
      for (const auto& [a, b] : view.dc_couples) {
        if (view.kind == DeviceView::Kind::kVoltageSource) continue;
        stamp(a, a);
        stamp(b, b);
        stamp(a, b);
        stamp(b, a);
      }
      for (const auto& [row, col] : view.gate_couples) stamp(row, col);
      if (branch_of[i] >= 0) {
        const int branch = branch_of[i];
        for (const auto& [a, b] : view.dc_couples) {
          stamp(a, branch);
          stamp(branch, a);
          stamp(b, branch);
          stamp(branch, b);
        }
      }
    }

    std::vector<std::vector<int>> adj(total);
    for (int row = 0; row < total; ++row) {
      adj[row].assign(pattern[row].begin(), pattern[row].end());
    }
    const std::vector<int> row_match = match_rows(adj);
    for (int row = 0; row < total; ++row) {
      if (row_match[row] != -1) continue;
      if (row < node_count) {
        if (degree[row] == 0) continue;   // unreferenced node, no equation
        if (no_dc_path[row]) continue;    // already explained by FTL-N002
        report.add("FTL-N007", Severity::kError, circuit.node_name(row),
                   "MNA row for node '" + circuit.node_name(row) +
                       "' cannot be structurally pivoted; the system is "
                       "symbolically singular",
                   touching[row] ? touching[row]->loc : SourceLoc{});
      } else {
        for (std::size_t i = 0; i < entries.size(); ++i) {
          if (branch_of[i] < 0 || row < branch_of[i] ||
              row >= branch_of[i] + entries[i].device->branch_count()) {
            continue;
          }
          report.add("FTL-N007", Severity::kError, entries[i].device->name(),
                     "branch equation of '" + entries[i].device->name() +
                         "' cannot be structurally pivoted; the system is "
                         "symbolically singular",
                     entries[i].loc);
          break;
        }
      }
    }
  }

  return report;
}

namespace {

/// Mirrors the parser's pass 1 (comment stripping, continuation joining)
/// so the lexical pre-pass sees the same cards the parser would.
struct LexCard {
  SourceLoc loc;
  std::vector<std::string> tokens;
};

std::vector<LexCard> lex_cards(const std::string& text) {
  std::vector<LexCard> cards;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  std::string pending;
  SourceLoc pending_loc;
  const auto flush = [&] {
    if (pending.empty()) return;
    std::string cleaned = pending;
    for (char& c : cleaned) {
      if (c == '(' || c == ')' || c == ',') c = ' ';
    }
    cards.push_back({pending_loc, util::split(cleaned, " \t")});
    pending.clear();
  };
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view v = util::trim(raw);
    if (const auto semi = v.find(';'); semi != std::string_view::npos) {
      v = util::trim(v.substr(0, semi));
    }
    if (v.empty() || v.front() == '*') continue;
    const int column = static_cast<int>(v.data() - raw.data()) + 1;
    if (v.front() == '+') {
      if (!pending.empty()) {
        pending += ' ';
        pending += std::string(v.substr(1));
      }
      continue;
    }
    flush();
    pending = std::string(v);
    pending_loc = {line_no, column};
  }
  flush();
  return cards;
}

bool is_ground_name(const std::string& name) {
  return name == "0" || util::iequals(name, "gnd");
}

/// FTL-N004 (duplicate element names) and FTL-N008 (case-aliased nodes)
/// found lexically, before the parser gets a chance to throw on them.
Report lexical_prepass(const std::string& text) {
  Report report;
  std::map<std::string, std::pair<std::string, SourceLoc>> element_names;
  std::map<std::string, std::pair<std::string, SourceLoc>> node_spellings;
  bool first_card = true;
  for (const LexCard& card : lex_cards(text)) {
    if (card.tokens.empty()) continue;
    const std::string& head = card.tokens[0];
    if (head[0] == '.') {
      first_card = false;
      continue;
    }
    const char kind =
        static_cast<char>(std::tolower(static_cast<unsigned char>(head[0])));
    const bool looks_like_element =
        (kind == 'r' || kind == 'c' || kind == 'v' || kind == 'i' ||
         kind == 'm');
    if (first_card && !looks_like_element) {
      first_card = false;  // title line
      continue;
    }
    first_card = false;
    if (!looks_like_element) continue;  // parser will report FTL-P001

    const auto [it, inserted] = element_names.emplace(
        util::to_lower(head), std::make_pair(head, card.loc));
    if (!inserted) {
      report.add("FTL-N004", Severity::kError, head,
                 "component name '" + head + "' is used more than once "
                 "(first defined as '" + it->second.first + "' on line " +
                     std::to_string(it->second.second.line) + ")",
                 card.loc);
    }

    const std::size_t node_tokens = kind == 'm' ? 4 : 2;
    for (std::size_t i = 1; i <= node_tokens && i < card.tokens.size(); ++i) {
      const std::string& name = card.tokens[i];
      if (is_ground_name(name)) continue;
      const auto [nit, ninserted] = node_spellings.emplace(
          util::to_lower(name), std::make_pair(name, card.loc));
      if (!ninserted && nit->second.first != name) {
        report.add("FTL-N008", Severity::kError, name,
                   "node '" + name + "' conflicts with earlier spelling '" +
                       nit->second.first + "' on line " +
                       std::to_string(nit->second.second.line) +
                       " (case-insensitive duplicate alias)",
                   card.loc);
      }
    }

    // FTL-N005 for R/C value fields, caught lexically: the parser (and the
    // device constructors behind it) reject these decks outright, so the
    // value must be diagnosed before parsing to carry a rule ID and location.
    if ((kind == 'r' || kind == 'c') && card.tokens.size() >= 4) {
      const auto value = util::parse_engineering(card.tokens[3]);
      if (value && *value <= 0.0) {
        const bool is_r = kind == 'r';
        std::string message = is_r ? "resistance of '" : "capacitance of '";
        message += head;
        message += "' must be positive (got ";
        message += num(*value);
        message += is_r ? " ohm)" : " F)";
        report.add("FTL-N005", Severity::kError, head, std::move(message),
                   card.loc);
      }
    }
  }
  return report;
}

/// Parses "netlist line N[, col C]: message" back into a location, so a
/// parser throw becomes a located FTL-P001 diagnostic.
std::pair<SourceLoc, std::string> split_parse_error(const std::string& what) {
  SourceLoc loc;
  constexpr std::string_view prefix = "netlist line ";
  if (what.rfind(prefix, 0) != 0) return {loc, what};
  std::size_t i = prefix.size();
  int line = 0;
  while (i < what.size() && std::isdigit(static_cast<unsigned char>(what[i]))) {
    line = line * 10 + (what[i] - '0');
    ++i;
  }
  if (line == 0) return {loc, what};
  loc.line = line;
  loc.column = 1;
  constexpr std::string_view col_prefix = ", col ";
  if (what.compare(i, col_prefix.size(), col_prefix) == 0) {
    i += col_prefix.size();
    int column = 0;
    while (i < what.size() &&
           std::isdigit(static_cast<unsigned char>(what[i]))) {
      column = column * 10 + (what[i] - '0');
      ++i;
    }
    if (column > 0) loc.column = column;
  }
  constexpr std::string_view sep = ": ";
  if (what.compare(i, sep.size(), sep) == 0) i += sep.size();
  return {loc, what.substr(i)};
}

}  // namespace

NetlistLintResult lint_netlist(const std::string& text,
                               const NetlistCheckOptions& options) {
  NetlistLintResult result;
  result.report = lexical_prepass(text);
  if (!result.report.ok()) {
    // The parser would throw on these same cards; the pre-pass diagnostics
    // are strictly more informative than its first-error-wins exception.
    return result;
  }
  spice::ParsedNetlist parsed;
  try {
    parsed = spice::parse_netlist(text);
  } catch (const ftl::Error& e) {
    const auto [loc, message] = split_parse_error(e.what());
    result.report.add("FTL-P001", Severity::kError, "netlist", message, loc);
    return result;
  } catch (const ftl::ContractViolation& e) {
    // Backstop: a deck must never crash the linter, even when it trips a
    // device-constructor contract the parser failed to pre-validate.
    result.report.add("FTL-P001", Severity::kError, "netlist", e.what());
    return result;
  }
  result.report.merge(
      check_circuit(parsed.circuit, options, &parsed.device_locations));
  result.parsed.emplace(std::move(parsed));
  return result;
}

void install_presolve_gate(spice::Circuit& circuit, GateOptions options) {
  circuit.set_presolve_hook([options](const Circuit& c) {
    Report report = check_circuit(c, options.checks);
    if (options.enabled && report.has_at_least(options.abort_at)) {
      throw CheckError(std::move(report));
    }
  });
}

}  // namespace ftl::check
