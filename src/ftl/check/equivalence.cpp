#include "ftl/check/equivalence.hpp"

#include <string>
#include <vector>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/paths.hpp"
#include "ftl/logic/bdd.hpp"
#include "ftl/logic/isop.hpp"
#include "ftl/sat/encode.hpp"
#include "ftl/sat/proof.hpp"
#include "ftl/sat/solver.hpp"
#include "ftl/util/error.hpp"

namespace ftl::check {
namespace {

using lattice::CellValue;
using lattice::Lattice;
using logic::BddManager;
using logic::BddRef;

/// BDD of the lattice function: OR over irredundant top-bottom paths of the
/// AND of the path's cell values. Falls back to the semantic truth table
/// when the path count exceeds the cap.
BddRef lattice_bdd(BddManager& mgr, const Lattice& lat,
                   const EquivalenceOptions& options) {
  // Shapes beyond the path enumerator's 128-cell contract (e.g. the
  // Altun–Riedel lattices of dense functions) go straight to the semantic
  // fallback instead of tripping a ContractViolation; within it,
  // count_products is a cheap DP, so the product-count cap costs nothing.
  if (lat.rows() * lat.cols() > 128 ||
      lattice::count_products(lat.rows(), lat.cols()) > options.max_products) {
    return mgr.from_truth_table(lattice::realized_truth_table(lat));
  }
  // Per-cell value BDDs (row-major), so path products reuse them.
  std::vector<BddRef> cell(static_cast<std::size_t>(lat.cell_count()),
                           mgr.zero());
  for (int r = 0; r < lat.rows(); ++r) {
    for (int c = 0; c < lat.cols(); ++c) {
      const CellValue& value = lat.at(r, c);
      BddRef ref = mgr.zero();
      switch (value.kind) {
        case CellValue::Kind::kConst0: ref = mgr.zero(); break;
        case CellValue::Kind::kConst1: ref = mgr.one(); break;
        case CellValue::Kind::kLiteral:
          ref = mgr.variable(value.literal.var);
          if (!value.literal.positive) ref = mgr.lnot(ref);
          break;
      }
      cell[static_cast<std::size_t>(r) * lat.cols() + c] = ref;
    }
  }
  BddRef f = mgr.zero();
  lattice::enumerate_products(
      lat.rows(), lat.cols(), [&](const std::vector<int>& path) {
        BddRef product = mgr.one();
        for (const int i : path) {
          product = mgr.land(product, cell[static_cast<std::size_t>(i)]);
          if (mgr.is_zero(product)) return;  // const-0 cell kills the path
        }
        f = mgr.lor(f, product);
      });
  return f;
}

/// A satisfying minterm of a non-zero BDD, by cofactor descent in variable
/// order: try var=0 first, take var=1 (and set the bit) when the 0-branch
/// is empty.
std::uint64_t any_minterm(BddManager& mgr, BddRef f) {
  std::uint64_t minterm = 0;
  for (int v = 0; v < mgr.num_vars(); ++v) {
    const BddRef low = mgr.cofactor(f, v, false);
    if (mgr.is_zero(low)) {
      minterm |= std::uint64_t{1} << v;
      f = mgr.cofactor(f, v, true);
    } else {
      f = low;
    }
  }
  return minterm;
}

std::string var_name(const Lattice& lat, int v) {
  if (v < static_cast<int>(lat.var_names().size())) {
    return lat.var_names()[static_cast<std::size_t>(v)];
  }
  std::string out = "x";
  out += std::to_string(v);
  return out;
}

std::string assignment_string(const Lattice& lat, std::uint64_t minterm) {
  std::string out;
  for (int v = 0; v < lat.num_vars(); ++v) {
    if (!out.empty()) out += ' ';
    out += var_name(lat, v);
    out += '=';
    out += (minterm >> v) & 1 ? '1' : '0';
  }
  return out;
}

/// The lattice's conductivity literals over the shared input variables
/// x_0..x_{nv-1} (solver variables 0..nv-1, created by the caller):
/// literal cells map to the matching input literal, constants to the pinned
/// true literal or its negation.
std::vector<sat::Lit> cell_on_literals(sat::Solver& solver,
                                       const Lattice& lat) {
  std::vector<sat::Lit> on;
  on.reserve(static_cast<std::size_t>(lat.cell_count()));
  for (int r = 0; r < lat.rows(); ++r) {
    for (int c = 0; c < lat.cols(); ++c) {
      const CellValue& value = lat.at(r, c);
      switch (value.kind) {
        case CellValue::Kind::kConst0:
          on.push_back(~solver.true_lit());
          break;
        case CellValue::Kind::kConst1:
          on.push_back(solver.true_lit());
          break;
        case CellValue::Kind::kLiteral:
          on.push_back(
              sat::Lit::of(value.literal.var, value.literal.positive));
          break;
      }
    }
  }
  return on;
}

/// Tseitin witness that `cover` (an ISOP of the function being asserted)
/// evaluates to 1 at the input assignment: one aux variable per cube,
/// implications aux -> cube literals, and a clause demanding some aux.
void assert_cover_holds(sat::Solver& solver, const logic::Sop& cover) {
  std::vector<sat::Lit> some_cube;
  for (const logic::Cube& cube : cover.cubes()) {
    const sat::Lit aux = sat::Lit::of(solver.new_var());
    for (const logic::Literal& literal : cube.literals()) {
      solver.add_clause({~aux, sat::Lit::of(literal.var, literal.positive)});
    }
    some_cube.push_back(aux);
  }
  solver.add_clause(std::move(some_cube));
}

/// Reads the input-variable assignment out of a satisfying model.
std::uint64_t model_minterm(const sat::Solver& solver, int num_vars) {
  std::uint64_t minterm = 0;
  for (int v = 0; v < num_vars; ++v) {
    if (solver.model_value(static_cast<sat::Var>(v)) == sat::LBool::kTrue) {
      minterm |= std::uint64_t{1} << v;
    }
  }
  return minterm;
}

}  // namespace

EquivalenceVerdict verify_equivalence_sat(const Lattice& lat,
                                         const logic::TruthTable& target,
                                         bool certify) {
  FTL_EXPECTS(lat.num_vars() == target.num_vars());
  const int nv = lat.num_vars();
  sat::SolverOptions solver_options;
  solver_options.certify = certify;
  EquivalenceVerdict verdict;
  bool proofs_ok = true;
  // Certification outcome of one UNSAT query: the solver auto-checked its
  // proof; a missing or rejected check poisons the `certified` bit.
  const auto note_unsat = [&](const sat::Solver& solver) {
    if (!certify) return;
    const sat::DratCheckResult* check = solver.last_proof_check();
    if (check == nullptr || !check->valid) {
      proofs_ok = false;
    } else {
      verdict.proof_check_ms += check->check_ms;
    }
  };
  if (nv == 0) {
    const bool got = lat.evaluate(0);
    if (got == target.get(0)) {
      verdict.realizes = true;
      verdict.certified = certify;  // no solver involved: vacuously checked
    } else {
      verdict.counterexample = 0;
      verdict.lattice_value = got;
    }
    return verdict;
  }

  // Query A: lattice connected while the target is 0.
  if (!target.is_one()) {
    sat::Solver solver(solver_options);
    for (int v = 0; v < nv; ++v) solver.new_var();
    sat::encode_path_exists(solver, lat.rows(), lat.cols(),
                            cell_on_literals(solver, lat));
    assert_cover_holds(solver, logic::isop(~target));
    if (solver.solve() == sat::LBool::kTrue) {
      verdict.counterexample = model_minterm(solver, nv);
      verdict.lattice_value = true;
      return verdict;
    }
    note_unsat(solver);
  }

  // Query B: lattice disconnected while the target is 1.
  if (!target.is_zero()) {
    sat::Solver solver(solver_options);
    for (int v = 0; v < nv; ++v) solver.new_var();
    sat::encode_path_absent(solver, lat.rows(), lat.cols(),
                            cell_on_literals(solver, lat));
    assert_cover_holds(solver, logic::isop(target));
    if (solver.solve() == sat::LBool::kTrue) {
      verdict.counterexample = model_minterm(solver, nv);
      verdict.lattice_value = false;
      return verdict;
    }
    note_unsat(solver);
  }

  verdict.realizes = true;
  verdict.certified = certify && proofs_ok;
  return verdict;
}

EquivalenceVerdict verify_equivalence(const Lattice& lat,
                                      const logic::TruthTable& target,
                                      const EquivalenceOptions& options) {
  if (options.certify || options.backend == EquivalenceOptions::Backend::kSat ||
      (options.backend == EquivalenceOptions::Backend::kAuto &&
       lat.num_vars() > options.sat_fallback_vars)) {
    return verify_equivalence_sat(lat, target, options.certify);
  }
  BddManager mgr(lat.num_vars());
  const BddRef f = lattice_bdd(mgr, lat, options);
  const BddRef g = mgr.from_truth_table(target);
  const BddRef diff = mgr.lxor(f, g);
  EquivalenceVerdict verdict;
  if (mgr.is_zero(diff)) {
    verdict.realizes = true;
    return verdict;
  }
  const std::uint64_t minterm = any_minterm(mgr, diff);
  verdict.counterexample = minterm;
  verdict.lattice_value = mgr.evaluate(f, minterm);
  return verdict;
}

Report check_equivalence(const Lattice& lat, const logic::TruthTable& target,
                         const EquivalenceOptions& options) {
  Report report;
  if (target.num_vars() != lat.num_vars()) {
    report.add("FTL-E002", Severity::kError, "lattice",
               "lattice has " + std::to_string(lat.num_vars()) +
                   " variables but the target function has " +
                   std::to_string(target.num_vars()));
    return report;
  }
  const EquivalenceVerdict verdict = verify_equivalence(lat, target, options);
  if (verdict.realizes) {
    if (options.certify && !verdict.certified) {
      report.add("FTL-E003", Severity::kError, "lattice",
                 "equivalence holds but its UNSAT proof failed the embedded "
                 "DRAT checker; the verdict is unverified");
    }
    return report;
  }
  const std::uint64_t minterm = *verdict.counterexample;
  report.add("FTL-E001", Severity::kError, "lattice",
             "lattice does not realize the target function: at " +
                 assignment_string(lat, minterm) + " the lattice outputs " +
                 (verdict.lattice_value ? "1" : "0") + " but the target is " +
                 (verdict.lattice_value ? "0" : "1"));
  return report;
}

}  // namespace ftl::check
