#include "ftl/check/lattice.hpp"

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "ftl/lattice/function.hpp"

namespace ftl::check {
namespace {

using lattice::CellValue;
using lattice::Lattice;

std::string var_name(const Lattice& lat, int v) {
  if (v < static_cast<int>(lat.var_names().size())) {
    return lat.var_names()[static_cast<std::size_t>(v)];
  }
  std::string out = "x";
  out += std::to_string(v);
  return out;
}

std::string cell_id(int row, int col) {
  std::string out = "(";
  out += std::to_string(row);
  out += ',';
  out += std::to_string(col);
  out += ')';
  return out;
}

/// BFS over non-const0 cells from a set of seed cells; returns the visited
/// mask (row-major).
std::vector<char> flood(const Lattice& lat, bool from_top) {
  const int rows = lat.rows();
  const int cols = lat.cols();
  std::vector<char> seen(static_cast<std::size_t>(rows) * cols, 0);
  std::queue<std::pair<int, int>> frontier;
  const int seed_row = from_top ? 0 : rows - 1;
  for (int c = 0; c < cols; ++c) {
    if (lat.at(seed_row, c).kind == CellValue::Kind::kConst0) continue;
    seen[static_cast<std::size_t>(seed_row) * cols + c] = 1;
    frontier.emplace(seed_row, c);
  }
  constexpr int kDr[] = {-1, 1, 0, 0};
  constexpr int kDc[] = {0, 0, -1, 1};
  while (!frontier.empty()) {
    const auto [r, c] = frontier.front();
    frontier.pop();
    for (int d = 0; d < 4; ++d) {
      const int nr = r + kDr[d];
      const int nc = c + kDc[d];
      if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
      if (lat.at(nr, nc).kind == CellValue::Kind::kConst0) continue;
      char& mark = seen[static_cast<std::size_t>(nr) * cols + nc];
      if (mark) continue;
      mark = 1;
      frontier.emplace(nr, nc);
    }
  }
  return seen;
}

/// Copy of `lat` with one row (axis=0) or column (axis=1) removed.
Lattice without(const Lattice& lat, int axis, int index) {
  const int rows = axis == 0 ? lat.rows() - 1 : lat.rows();
  const int cols = axis == 1 ? lat.cols() - 1 : lat.cols();
  Lattice out(rows, cols, lat.num_vars(), lat.var_names());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int sr = (axis == 0 && r >= index) ? r + 1 : r;
      const int sc = (axis == 1 && c >= index) ? c + 1 : c;
      out.set(r, c, lat.at(sr, sc));
    }
  }
  return out;
}

}  // namespace

Report check_lattice(const Lattice& lat, const LatticeCheckOptions& options) {
  Report report;
  const int rows = lat.rows();
  const int cols = lat.cols();
  const int num_vars = lat.num_vars();

  // FTL-L003: out-of-range literals. An error — evaluate() would read an
  // undefined assignment bit.
  bool literals_ok = true;
  std::vector<char> var_used(static_cast<std::size_t>(std::max(num_vars, 0)),
                             0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const CellValue& cell = lat.at(r, c);
      if (cell.kind != CellValue::Kind::kLiteral) continue;
      const int var = cell.literal.var;
      if (var < 0 || var >= num_vars) {
        literals_ok = false;
        report.add("FTL-L003", Severity::kError, cell_id(r, c),
                   "cell " + cell_id(r, c) + " references variable x" +
                       std::to_string(var) + " outside [0, " +
                       std::to_string(num_vars) + ")");
      } else {
        var_used[static_cast<std::size_t>(var)] = 1;
      }
    }
  }

  // FTL-L002: declared variables never placed on any cell. The realized
  // function cannot depend on them, which usually means the mapping was
  // truncated.
  for (int v = 0; v < num_vars; ++v) {
    if (var_used[static_cast<std::size_t>(v)]) continue;
    const std::string name = var_name(lat, v);
    report.add("FTL-L002", Severity::kWarning, name,
               "variable '" + name +
                   "' is declared but placed on no lattice cell");
  }

  // FTL-L001: switches on no top-to-bottom path. A non-const0 cell must be
  // reachable from the top row AND the bottom row through non-const0 cells
  // to ever carry current; otherwise it is dead area.
  if (rows > 0 && cols > 0) {
    const std::vector<char> from_top = flood(lat, true);
    const std::vector<char> from_bottom = flood(lat, false);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (lat.at(r, c).kind == CellValue::Kind::kConst0) continue;
        const std::size_t i = static_cast<std::size_t>(r) * cols + c;
        if (from_top[i] && from_bottom[i]) continue;
        report.add("FTL-L001", Severity::kWarning, cell_id(r, c),
                   "switch at " + cell_id(r, c) +
                       " lies on no top-to-bottom path (blocked by "
                       "constant-0 cells) and can never conduct");
      }
    }
  }

  // Semantic passes need a well-formed, evaluable lattice. When the only
  // obstacle is the variable count, say so (FTL-L009) instead of returning
  // a misleadingly clean report: the re-realization passes are capped at
  // max_semantic_vars, and past that wall the SAT audits (FTL-L006/7/8,
  // check::audit_lattice_sat) are the instrument that still works.
  if (options.semantic && literals_ok && rows > 0 && cols > 0 &&
      (num_vars > options.max_semantic_vars ||
       num_vars > logic::TruthTable::kMaxVars)) {
    report.add("FTL-L009", Severity::kNote, "lattice",
               "semantic passes (constant/removable-row analysis) not run: " +
                   std::to_string(num_vars) + " variables exceed the " +
                   std::to_string(std::min<int>(options.max_semantic_vars,
                                                logic::TruthTable::kMaxVars)) +
                   "-variable re-realization budget; use the SAT-backed "
                   "audits (--certify) for certified findings at this size");
  }
  if (!options.semantic || !literals_ok || rows == 0 || cols == 0 ||
      num_vars > options.max_semantic_vars ||
      num_vars > logic::TruthTable::kMaxVars) {
    return report;
  }
  // The redundancy passes re-realize one sub-lattice per row and column;
  // small shapes recur constantly across lint calls, so they go through the
  // memoized-LUT engine (shared per-shape table) and bigger ones through
  // the bitsliced kernel.
  const auto realized_table = [](const Lattice& l) {
    return l.cell_count() <= 12 ? lattice::realized_truth_table_lut(l)
                                : lattice::realized_truth_table(l);
  };
  const logic::TruthTable realized = realized_table(lat);

  // FTL-L005: constant function. Legal, but a constant needs no lattice.
  if (realized.is_zero() || realized.is_one()) {
    report.add("FTL-L005", Severity::kNote, "lattice",
               std::string("lattice realizes the constant function ") +
                   (realized.is_one() ? "1" : "0"));
  }

  // FTL-L004: removable rows/columns — deleting them leaves the realized
  // function unchanged, so the physical array is larger than the function
  // needs. A note: padded benches are routinely intentional.
  if (rows > 1) {
    for (int r = 0; r < rows; ++r) {
      if (realized_table(without(lat, 0, r)) != realized) {
        continue;
      }
      report.add("FTL-L004", Severity::kNote, "row " + std::to_string(r),
                 "row " + std::to_string(r) +
                     " can be removed without changing the realized function");
    }
  }
  if (cols > 1) {
    for (int c = 0; c < cols; ++c) {
      if (realized_table(without(lat, 1, c)) != realized) {
        continue;
      }
      report.add("FTL-L004", Severity::kNote, "col " + std::to_string(c),
                 "column " + std::to_string(c) +
                     " can be removed without changing the realized function");
    }
  }
  return report;
}

}  // namespace ftl::check
