// SAT-backed lattice audits. The shared trick across FTL-L006/L007: every
// cell's semantics (conductivity variable o_j tied to the cell's literal)
// enters the CNF behind its own guard literal g_j, with g_j → (o_j ↔ L_j).
// Queries assume all guards, so an UNSAT answer comes with a
// failed-assumption set whose guards are exactly the cells the refutation
// used — a per-cell UNSAT core the greedy deletion pass then shrinks. The
// connectivity side uses the EXACT (iff-defined) reachability encodings, so
// SAT answers ("the cell does conduct somewhere", "the row is not
// removable") are as trustworthy as the UNSAT ones.

#include "ftl/check/lattice_sat.hpp"

#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "ftl/lattice/function.hpp"
#include "ftl/lattice/synthesis.hpp"
#include "ftl/sat/encode.hpp"
#include "ftl/sat/proof.hpp"
#include "ftl/sat/solver.hpp"

namespace ftl::check {
namespace {

using lattice::CellValue;
using lattice::Lattice;
using sat::LBool;
using sat::Lit;
using sat::Solver;

std::string cell_id(int row, int col) {
  std::string out = "(";
  out += std::to_string(row);
  out += ',';
  out += std::to_string(col);
  out += ')';
  return out;
}

/// BFS over non-const0 cells from the top or bottom boundary — the same
/// structural liveness FTL-L001 reports on, recomputed here so the L007
/// pass can skip cells that pass already flags.
std::vector<char> flood(const Lattice& lat, bool from_top) {
  const int rows = lat.rows();
  const int cols = lat.cols();
  std::vector<char> seen(static_cast<std::size_t>(rows) * cols, 0);
  std::queue<std::pair<int, int>> frontier;
  const int seed_row = from_top ? 0 : rows - 1;
  for (int c = 0; c < cols; ++c) {
    if (lat.at(seed_row, c).kind == CellValue::Kind::kConst0) continue;
    seen[static_cast<std::size_t>(seed_row) * cols + c] = 1;
    frontier.emplace(seed_row, c);
  }
  constexpr int kDr[] = {-1, 1, 0, 0};
  constexpr int kDc[] = {0, 0, -1, 1};
  while (!frontier.empty()) {
    const auto [r, c] = frontier.front();
    frontier.pop();
    for (int d = 0; d < 4; ++d) {
      const int nr = r + kDr[d];
      const int nc = c + kDc[d];
      if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
      if (lat.at(nr, nc).kind == CellValue::Kind::kConst0) continue;
      char& mark = seen[static_cast<std::size_t>(nr) * cols + nc];
      if (mark) continue;
      mark = 1;
      frontier.emplace(nr, nc);
    }
  }
  return seen;
}

struct AuditCtx {
  const LatticeSatAuditOptions& options;
  LatticeSatAudit& audit;
};

sat::SolverOptions solver_options(const AuditCtx& ctx) {
  sat::SolverOptions out;
  out.certify = ctx.options.certify;
  out.max_conflicts = ctx.options.max_conflicts;
  return out;
}

struct GuardedCells {
  std::vector<Lit> on;      ///< o_j: per-cell conductivity variable
  std::vector<Lit> guards;  ///< g_j: assumption tying o_j to the cell value
};

/// Input variables must already occupy solver vars 0..num_vars-1. Creates a
/// fresh conductivity variable o and guard g per cell with g → (o ↔ L),
/// L being the cell's value over the inputs (constants via the pinned true
/// literal). Assuming every guard pins the o vector to the lattice's
/// semantics; dropping one frees that cell — which is what makes the failed
/// assumptions of an UNSAT answer a per-cell core.
GuardedCells encode_guarded_cells(Solver& solver, const Lattice& lat) {
  GuardedCells out;
  const std::size_t cells = static_cast<std::size_t>(lat.cell_count());
  out.on.reserve(cells);
  out.guards.reserve(cells);
  for (int r = 0; r < lat.rows(); ++r) {
    for (int c = 0; c < lat.cols(); ++c) {
      const CellValue& value = lat.at(r, c);
      Lit lit = solver.true_lit();
      switch (value.kind) {
        case CellValue::Kind::kConst0: lit = ~solver.true_lit(); break;
        case CellValue::Kind::kConst1: lit = solver.true_lit(); break;
        case CellValue::Kind::kLiteral:
          lit = Lit::of(value.literal.var, value.literal.positive);
          break;
      }
      const Lit on = Lit::of(solver.new_var());
      const Lit guard = Lit::of(solver.new_var());
      solver.add_clause({~guard, ~on, lit});
      solver.add_clause({~guard, on, ~lit});
      out.on.push_back(on);
      out.guards.push_back(guard);
    }
  }
  return out;
}

/// Consumes one kFalse verdict: bumps the UNSAT counters and, under
/// certify, folds in the solver's automatic DRAT check. Returns false when
/// the proof was rejected — the caller reports one FTL-E003 per query.
bool consume_unsat(AuditCtx& ctx, const Solver& solver) {
  ++ctx.audit.unsat_verdicts;
  if (!ctx.options.certify) return true;
  const sat::DratCheckResult* check = solver.last_proof_check();
  if (check == nullptr || !check->valid) {
    ++ctx.audit.proof_failures;
    return false;
  }
  ++ctx.audit.certified_unsat;
  ctx.audit.proof_check_ms += check->check_ms;
  return true;
}

/// Cell indices (into `guards`) whose guard's NEGATION appears in the
/// solver's failed-assumption set — the solver reports the negations of the
/// assumptions it refuted.
std::vector<int> guard_core(const Solver& solver,
                            const std::vector<Lit>& guards) {
  std::vector<int> core;
  const std::vector<Lit>& failed = solver.failed_assumptions();
  for (std::size_t j = 0; j < guards.size(); ++j) {
    for (const Lit p : failed) {
      if (p == ~guards[j]) {
        core.push_back(static_cast<int>(j));
        break;
      }
    }
  }
  return core;
}

/// Greedy deletion minimization: drop one core guard at a time and re-solve
/// under the rest (plus `base`); keep the drop when the query stays UNSAT,
/// also shrinking to the fresh failed-assumption core. kTrue restores the
/// guard; kUndef stops minimizing — the current core is still a valid
/// justification, just possibly not minimal.
std::vector<int> minimize_core(AuditCtx& ctx, Solver& solver,
                               const std::vector<Lit>& guards,
                               std::vector<int> core,
                               const std::vector<Lit>& base,
                               bool& proofs_ok) {
  std::size_t i = 0;
  while (i < core.size()) {
    std::vector<Lit> assume = base;
    for (std::size_t k = 0; k < core.size(); ++k) {
      if (k != i) assume.push_back(guards[static_cast<std::size_t>(core[k])]);
    }
    solver.set_max_conflicts(ctx.options.max_conflicts);
    const LBool verdict = solver.solve(assume);
    if (verdict == LBool::kUndef) break;
    if (verdict == LBool::kTrue) {
      ++i;  // this guard is necessary
      continue;
    }
    proofs_ok = consume_unsat(ctx, solver) && proofs_ok;
    const std::vector<Lit>& failed = solver.failed_assumptions();
    std::vector<int> next;
    for (std::size_t k = 0; k < core.size(); ++k) {
      if (k == i) continue;
      for (const Lit p : failed) {
        if (p == ~guards[static_cast<std::size_t>(core[k])]) {
          next.push_back(core[k]);
          break;
        }
      }
    }
    core = std::move(next);  // i now indexes the next untested guard
  }
  return core;
}

std::string core_cells(const std::vector<int>& core, int cols) {
  if (core.empty()) return "the connectivity encoding alone";
  std::string out = "cells ";
  constexpr std::size_t kMaxShown = 8;
  for (std::size_t k = 0; k < core.size(); ++k) {
    if (k == kMaxShown) {
      out += ", +" + std::to_string(core.size() - kMaxShown) + " more";
      break;
    }
    if (k != 0) out += ", ";
    out += cell_id(core[k] / cols, core[k] % cols);
  }
  return out;
}

/// FTL-L007: for each structurally-alive switch, is there ANY input
/// assignment under which a conducting top-to-bottom path runs through it?
/// One shared solver; per cell the query assumes every guard plus the
/// cell's exact top- and bottom-reachability literals. UNSAT means the cell
/// never carries current — e.g. its neighborhood demands x and ¬x conduct
/// at once, which no flood fill can see.
void audit_unreachable(AuditCtx& ctx, const Lattice& lat) {
  const int rows = lat.rows();
  const int cols = lat.cols();
  const std::vector<char> top = flood(lat, true);
  const std::vector<char> bottom = flood(lat, false);

  Solver solver(solver_options(ctx));
  for (int v = 0; v < lat.num_vars(); ++v) solver.new_var();
  const GuardedCells cells = encode_guarded_cells(solver, lat);
  const std::vector<Lit> reach_top =
      sat::encode_reach_exact(solver, rows, cols, cells.on, true);
  const std::vector<Lit> reach_bottom =
      sat::encode_reach_exact(solver, rows, cols, cells.on, false);

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (lat.at(r, c).kind == CellValue::Kind::kConst0) continue;
      const std::size_t i = static_cast<std::size_t>(r) * cols + c;
      if (!top[i] || !bottom[i]) continue;  // FTL-L001 already flags it
      const std::vector<Lit> base = {reach_top[i], reach_bottom[i]};
      std::vector<Lit> assume = base;
      assume.insert(assume.end(), cells.guards.begin(), cells.guards.end());
      solver.set_max_conflicts(ctx.options.max_conflicts);
      ++ctx.audit.queries;
      if (solver.solve(assume) != LBool::kFalse) continue;
      bool proofs_ok = consume_unsat(ctx, solver);
      std::vector<int> core = minimize_core(ctx, solver, cells.guards,
                                            guard_core(solver, cells.guards),
                                            base, proofs_ok);
      ctx.audit.report.add(
          "FTL-L007", Severity::kWarning, cell_id(r, c),
          "switch at " + cell_id(r, c) +
              " can never conduct: no input assignment places it on a "
              "conducting top-to-bottom path (UNSAT core: " +
              core_cells(core, cols) + ")");
      if (!proofs_ok) {
        ctx.audit.report.add(
            "FTL-E003", Severity::kError, cell_id(r, c),
            "an UNSAT verdict behind the FTL-L007 finding at " +
                cell_id(r, c) +
                " failed the embedded DRAT checker; the finding is "
                "unverified");
      }
    }
  }
}

/// FTL-L006: is deleting row r (or column c) observationally invisible?
/// Fresh solver per candidate: the sub-lattice shares the surviving cells'
/// conductivity variables, both lattices get exact connectivity literals,
/// and a difference literal d (assumed) demands they disagree. UNSAT under
/// all guards + d means no input assignment distinguishes the two — the
/// certified analogue of FTL-L004, with the core naming the cells whose
/// semantics force the equivalence.
void audit_removable(AuditCtx& ctx, const Lattice& lat) {
  const int rows = lat.rows();
  const int cols = lat.cols();
  const auto try_candidate = [&](int axis, int index) {
    Solver solver(solver_options(ctx));
    for (int v = 0; v < lat.num_vars(); ++v) solver.new_var();
    const GuardedCells cells = encode_guarded_cells(solver, lat);
    std::vector<Lit> sub_on;
    for (int r = 0; r < rows; ++r) {
      if (axis == 0 && r == index) continue;
      for (int c = 0; c < cols; ++c) {
        if (axis == 1 && c == index) continue;
        sub_on.push_back(cells.on[static_cast<std::size_t>(r) * cols + c]);
      }
    }
    const Lit full = sat::encode_connected_exact(solver, rows, cols, cells.on);
    const Lit sub =
        sat::encode_connected_exact(solver, axis == 0 ? rows - 1 : rows,
                                    axis == 1 ? cols - 1 : cols, sub_on);
    // d → (full XOR sub); only this direction matters since d is assumed.
    const Lit diff = Lit::of(solver.new_var());
    solver.add_clause({~diff, full, sub});
    solver.add_clause({~diff, ~full, ~sub});

    const std::vector<Lit> base = {diff};
    std::vector<Lit> assume = base;
    assume.insert(assume.end(), cells.guards.begin(), cells.guards.end());
    solver.set_max_conflicts(ctx.options.max_conflicts);
    ++ctx.audit.queries;
    if (solver.solve(assume) != LBool::kFalse) return;
    bool proofs_ok = consume_unsat(ctx, solver);
    std::vector<int> core = minimize_core(ctx, solver, cells.guards,
                                          guard_core(solver, cells.guards),
                                          base, proofs_ok);
    const std::string object =
        (axis == 0 ? "row " : "col ") + std::to_string(index);
    ctx.audit.report.add(
        "FTL-L006", Severity::kNote, object,
        (axis == 0 ? "row " : "column ") + std::to_string(index) +
            " can be removed without changing the realized function "
            "(SAT-certified on the exact connectivity miter; UNSAT core: " +
            core_cells(core, cols) + ")");
    if (!proofs_ok) {
      ctx.audit.report.add(
          "FTL-E003", Severity::kError, object,
          "an UNSAT verdict behind the FTL-L006 finding on " + object +
              " failed the embedded DRAT checker; the finding is unverified");
    }
  };
  if (rows > 1) {
    for (int r = 0; r < rows; ++r) try_candidate(0, r);
  }
  if (cols > 1) {
    for (int c = 0; c < cols; ++c) try_candidate(1, c);
  }
}

/// FTL-L008: does a strictly smaller lattice realize the same function?
/// Two CEGAR synthesis runs on the (rows-1)×cols and rows×(cols-1) shapes.
/// Needs the realized truth table, so it carries its own variable cap; an
/// infeasible answer is a clean bill (the lattice is shape-minimal in that
/// direction) whose proof is still checked under certify.
void audit_suboptimal(AuditCtx& ctx, const Lattice& lat) {
  const int rows = lat.rows();
  const int cols = lat.cols();
  const int nv = lat.num_vars();
  if (!ctx.options.suboptimal) return;
  if (nv > ctx.options.suboptimal_max_vars) return;
  if (nv > logic::TruthTable::kMaxVars) return;
  if (rows * cols <= 1) return;
  const logic::TruthTable realized = lattice::realized_truth_table(lat);

  const int shapes[2][2] = {{rows - 1, cols}, {rows, cols - 1}};
  for (const auto& shape : shapes) {
    const int sub_rows = shape[0];
    const int sub_cols = shape[1];
    if (sub_rows < 1 || sub_cols < 1 || sub_rows * sub_cols > 64) continue;
    lattice::SatSynthesisOptions synth;
    synth.certify = ctx.options.certify;
    synth.max_conflicts = ctx.options.suboptimal_conflicts;
    ++ctx.audit.queries;
    const lattice::SatSynthesisResult result =
        lattice::synth_sat(realized, sub_rows, sub_cols, synth);
    if (result.lattice.has_value()) {
      ctx.audit.report.add(
          "FTL-L008", Severity::kNote, "lattice",
          "a smaller " + std::to_string(sub_rows) + "x" +
              std::to_string(sub_cols) +
              " lattice realizes the same function (found by CEGAR "
              "synthesis); the " +
              std::to_string(rows) + "x" + std::to_string(cols) +
              " array spends " +
              std::to_string(rows * cols - sub_rows * sub_cols) +
              (rows * cols - sub_rows * sub_cols == 1
                   ? " more switch than needed"
                   : " more switches than needed"));
      continue;
    }
    if (!result.proven_infeasible) continue;  // budget ran out: no verdict
    ++ctx.audit.unsat_verdicts;
    if (!ctx.options.certify) continue;
    if (result.proof_checked && result.proof_valid) {
      ++ctx.audit.certified_unsat;
      ctx.audit.proof_check_ms += result.proof_check_ms;
    } else {
      ++ctx.audit.proof_failures;
      ctx.audit.report.add(
          "FTL-E003", Severity::kError, "lattice",
          "the infeasibility proof for the " + std::to_string(sub_rows) +
              "x" + std::to_string(sub_cols) +
              " shape query failed the embedded DRAT checker");
    }
  }
}

}  // namespace

LatticeSatAudit audit_lattice_sat(const Lattice& lat,
                                  const LatticeSatAuditOptions& options) {
  LatticeSatAudit audit;
  const int rows = lat.rows();
  const int cols = lat.cols();
  const int nv = lat.num_vars();
  if (rows < 1 || cols < 1 || nv < 1) return audit;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const CellValue& cell = lat.at(r, c);
      if (cell.kind == CellValue::Kind::kLiteral &&
          (cell.literal.var < 0 || cell.literal.var >= nv)) {
        return audit;  // ill-formed: FTL-L003 is check_lattice's department
      }
    }
  }
  AuditCtx ctx{options, audit};
  audit_unreachable(ctx, lat);
  audit_removable(ctx, lat);
  audit_suboptimal(ctx, lat);
  return audit;
}

}  // namespace ftl::check
