#pragma once
// Diagnostics framework for the static-analysis passes (ftl::check).
//
// Every finding is a Diagnostic with a stable rule ID ("FTL-N002"), a
// severity, the object it concerns (a device, node, or lattice cell), a
// human message, and an optional source location carried over from the
// netlist parser. A Report aggregates diagnostics and renders them as
// compiler-style text or as canonical single-line JSON (fixed key order, no
// whitespace) so lint output can be golden-tested and cached byte-for-byte.
//
// Rule catalog (see DESIGN.md §11 for the full table):
//   FTL-P001  error    netlist failed to parse
//   FTL-N001  warning  dangling node (single device terminal)
//   FTL-N002  error    node has no DC path to ground
//   FTL-N003  error    voltage-source loop
//   FTL-N004  error    duplicate component name
//   FTL-N005  error    zero/negative value or geometry
//   FTL-N006  warning  unit-suspect value (likely missing suffix)
//   FTL-N007  error    structurally singular MNA pattern
//   FTL-N008  error    node names differing only by letter case
//   FTL-L001  warning  switch lies on no top-to-bottom path
//   FTL-L002  warning  declared variable never placed on a cell
//   FTL-L003  error    cell literal references an out-of-range variable
//   FTL-L004  note     row/column removable without changing the function
//   FTL-L005  note     lattice realizes a constant function
//   FTL-L006  note     row/column removable, SAT-certified (UNSAT-core cells)
//   FTL-L007  warning  switch can never conduct, SAT-certified
//   FTL-L008  note     a smaller lattice realizes the same function
//   FTL-L009  note     semantic analysis skipped / routed to SAT audits
//   FTL-E001  error    mapping does not realize the target (counterexample)
//   FTL-E002  error    mapping/target variable-count mismatch
//   FTL-E003  error    UNSAT verdict failed the embedded DRAT proof checker

#include <string>
#include <vector>

#include "ftl/util/error.hpp"
#include "ftl/util/source_loc.hpp"

namespace ftl::check {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

/// Lower-case severity name ("note", "warning", "error").
const char* severity_name(Severity severity);

struct Diagnostic {
  std::string rule;      ///< stable ID, e.g. "FTL-N002"
  Severity severity = Severity::kNote;
  std::string object;    ///< device/node/cell the finding concerns
  std::string message;   ///< human-readable explanation
  util::SourceLoc loc;   ///< deck position when known
};

class Report {
 public:
  void add(std::string rule, Severity severity, std::string object,
           std::string message, util::SourceLoc loc = {});

  /// Appends every diagnostic of `other` (pass composition).
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  int errors() const { return count(Severity::kError); }
  int warnings() const { return count(Severity::kWarning); }
  int notes() const { return count(Severity::kNote); }

  /// No errors (notes and warnings allowed). The gate aborts on !ok().
  bool ok() const { return errors() == 0; }

  /// No errors and no warnings (notes allowed) — lint exit code 0.
  bool clean() const { return errors() == 0 && warnings() == 0; }

  /// True when some diagnostic is at or above `severity`.
  bool has_at_least(Severity severity) const;

  /// Compiler-style rendering, one line per diagnostic plus a summary:
  ///   3:1: error [FTL-N002] node 'mid' has no DC path to ground
  ///   1 error, 0 warnings, 0 notes
  std::string render_text() const;

  /// Canonical single-line JSON:
  ///   {"clean":false,"errors":1,"warnings":0,"notes":0,
  ///    "diagnostics":[{"rule":...,"severity":...,"object":...,
  ///                    "message":...,"line":3,"column":1}]}
  /// line/column appear only when the location is valid. Key order and
  /// formatting are stable so output can be golden-tested.
  std::string render_json() const;

 private:
  int count(Severity severity) const;

  std::vector<Diagnostic> diagnostics_;
};

/// Thrown by the pre-solve gate when a circuit fails its static checks;
/// carries the full report (what() holds the rendered text).
class CheckError : public Error {
 public:
  explicit CheckError(Report report);

  const Report& report() const { return report_; }

 private:
  Report report_;
};

/// Escapes a string for embedding in JSON output (no surrounding quotes).
std::string json_escape(const std::string& text);

}  // namespace ftl::check
