#pragma once
// Formal equivalence of a lattice mapping against its target function
// (FTL-E001/E002), decided on ROBDDs rather than by exhaustive simulation.
//
// The lattice function is built as the OR over its irredundant top-bottom
// path products (§II), each product the AND of the path's cell values; when
// the path count is too large to enumerate, the builder falls back to the
// semantic truth table. Non-equivalence comes with a concrete
// counterexample minterm extracted by cofactor descent on f XOR target.

#include <cstdint>
#include <optional>

#include "ftl/check/diagnostics.hpp"
#include "ftl/lattice/lattice.hpp"
#include "ftl/logic/truth_table.hpp"

namespace ftl::check {

struct EquivalenceOptions {
  /// Path-product cap for the symbolic BDD construction; lattices with more
  /// irredundant paths use the truth-table fallback.
  std::uint64_t max_products = 50000;

  /// Decision procedure. kBdd is the historical XOR-of-BDDs check; kSat is
  /// a miter on the embedded CDCL solver (two path-connectivity existence
  /// queries, no BDD ever built); kAuto picks SAT once the variable count
  /// passes sat_fallback_vars, where BDD construction cost turns steep.
  enum class Backend { kAuto, kBdd, kSat };
  Backend backend = Backend::kAuto;
  int sat_fallback_vars = 20;  ///< kAuto switches to SAT above this

  /// Certify: force the SAT backend, log DRAT proofs, and run the embedded
  /// DratChecker on each UNSAT miter query, so an "equivalent" verdict is
  /// machine-checked instead of trusted from the CDCL core. The verdict's
  /// `certified` bit reports the checker outcome; check_equivalence turns a
  /// failed check into FTL-E003.
  bool certify = false;
};

struct EquivalenceVerdict {
  bool realizes = false;
  /// Set when !realizes: an input assignment (bit v = variable v) on which
  /// the lattice and the target disagree.
  std::optional<std::uint64_t> counterexample;
  bool lattice_value = false;  ///< lattice output at the counterexample

  /// With EquivalenceOptions::certify and realizes: true when every UNSAT
  /// miter query's DRAT proof passed the embedded checker.
  bool certified = false;
  double proof_check_ms = 0.0;  ///< total checker wall-clock
};

/// Decides whether `lat` realizes exactly `target`. Requires matching
/// variable counts (check_equivalence reports the mismatch as FTL-E002).
/// Dispatches to the BDD or SAT backend per EquivalenceOptions::backend.
EquivalenceVerdict verify_equivalence(const lattice::Lattice& lat,
                                      const logic::TruthTable& target,
                                      const EquivalenceOptions& options = {});

/// SAT-miter backend: two CDCL existence queries — "some assignment
/// connects the lattice while the target is 0" (path-exists encoding plus a
/// Tseitin witness of an ISOP cube of ¬target) and "some assignment leaves
/// it disconnected while the target is 1". Both UNSAT proves equivalence;
/// either model is a genuine counterexample minterm read off the input
/// variables. Never builds a BDD, so it scales past BDD-friendly sizes.
/// With `certify`, each query logs a DRAT proof and each UNSAT answer is
/// validated by the embedded checker (see EquivalenceVerdict::certified).
EquivalenceVerdict verify_equivalence_sat(const lattice::Lattice& lat,
                                          const logic::TruthTable& target,
                                          bool certify = false);

/// Report wrapper: FTL-E002 on variable-count mismatch, FTL-E001 with the
/// counterexample assignment spelled out (variable names when the lattice
/// has them) on non-equivalence. An equivalent mapping yields an empty
/// report.
Report check_equivalence(const lattice::Lattice& lat,
                         const logic::TruthTable& target,
                         const EquivalenceOptions& options = {});

}  // namespace ftl::check
