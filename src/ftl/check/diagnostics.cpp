#include "ftl/check/diagnostics.hpp"

#include <cstdio>

namespace ftl::check {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "note";
}

void Report::add(std::string rule, Severity severity, std::string object,
                 std::string message, util::SourceLoc loc) {
  diagnostics_.push_back({std::move(rule), severity, std::move(object),
                          std::move(message), loc});
}

void Report::merge(const Report& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

int Report::count(Severity severity) const {
  int n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool Report::has_at_least(Severity severity) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity >= severity) return true;
  }
  return false;
}

std::string Report::render_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.loc.valid()) {
      out += std::to_string(d.loc.line) + ":" + std::to_string(d.loc.column) +
             ": ";
    }
    out += severity_name(d.severity);
    out += " [" + d.rule + "] " + d.message + "\n";
  }
  char summary[96];
  std::snprintf(summary, sizeof(summary), "%d error%s, %d warning%s, %d note%s\n",
                errors(), errors() == 1 ? "" : "s", warnings(),
                warnings() == 1 ? "" : "s", notes(), notes() == 1 ? "" : "s");
  out += summary;
  return out;
}

std::string Report::render_json() const {
  std::string out = "{\"clean\":";
  out += clean() ? "true" : "false";
  out += ",\"errors\":" + std::to_string(errors());
  out += ",\"warnings\":" + std::to_string(warnings());
  out += ",\"notes\":" + std::to_string(notes());
  out += ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (!first) out += ',';
    first = false;
    out += "{\"rule\":\"" + json_escape(d.rule) + "\"";
    out += ",\"severity\":\"";
    out += severity_name(d.severity);
    out += "\",\"object\":\"" + json_escape(d.object) + "\"";
    out += ",\"message\":\"" + json_escape(d.message) + "\"";
    if (d.loc.valid()) {
      out += ",\"line\":" + std::to_string(d.loc.line);
      out += ",\"column\":" + std::to_string(d.loc.column);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

CheckError::CheckError(Report report)
    : Error("static checks failed:\n" + report.render_text()),
      report_(std::move(report)) {}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ftl::check
