#pragma once
// Structural netlist checks (FTL-N001..N008, FTL-P001) that run before any
// solve. They work on the DeviceView self-descriptions, so they apply both
// to parsed decks (with source locations) and to programmatically built
// circuits (bridge lattice/chain benches, tests).
//
// The passes:
//  - value/geometry sanity: zero/negative R, C, W, L (error) and
//    unit-suspect magnitudes that smell like a missing engineering suffix
//    ("C1 out 0 10" is ten farads) (warning);
//  - dangling nodes: a node referenced by exactly one device terminal;
//  - DC reachability: every node must reach ground through devices with a
//    finite DC conductance (resistors, channels, voltage sources) —
//    capacitor-only and current-source-only nodes make the MNA matrix
//    singular;
//  - voltage-source loops: a cycle of ideal voltage sources
//    over-determines the loop voltages;
//  - symbolic MNA singularity: maximum bipartite matching on the DC
//    sparsity pattern (no factorization); a structurally rank-deficient
//    pattern is reported against the node or branch equation that cannot
//    be pivoted.

#include <optional>
#include <string>
#include <unordered_map>

#include "ftl/check/diagnostics.hpp"
#include "ftl/spice/netlist_parser.hpp"

namespace ftl::check {

struct NetlistCheckOptions {
  /// Run the bipartite-matching singularity pass (FTL-N007). Skipped
  /// automatically when the circuit contains devices with opaque views.
  bool structural_singularity = true;

  // FTL-N006 plausibility bands (SI units). Values outside them are
  // warnings, not errors — exotic but legal circuits can disable the rule
  // by widening the band.
  double resistor_min = 1e-2;   ///< ohm
  double resistor_max = 1e9;    ///< ohm (the §V pull-up is 5e5)
  double capacitor_max = 1e-6;  ///< farad (the §V load is 1e-14)
  double geometry_min = 1e-9;   ///< metre
  double geometry_max = 1e-3;   ///< metre (the paper devices are ~7e-7)
};

using DeviceLocations = std::unordered_map<std::string, util::SourceLoc>;

/// Runs every structural pass over an assembled circuit. `locations` (from
/// ParsedNetlist::device_locations) attaches deck positions when present.
Report check_circuit(const spice::Circuit& circuit,
                     const NetlistCheckOptions& options = {},
                     const DeviceLocations* locations = nullptr);

struct NetlistLintResult {
  Report report;
  /// The parsed deck, when parsing succeeded. Unset when the deck failed
  /// to parse (FTL-P001) or the lexical pre-pass found errors
  /// (FTL-N004/N008) that the parser would refuse anyway.
  std::optional<spice::ParsedNetlist> parsed;
};

/// Lints a netlist from source text: lexical pre-pass (duplicate names,
/// case-aliased nodes), parse (failures become FTL-P001 diagnostics rather
/// than exceptions), then check_circuit with locations.
NetlistLintResult lint_netlist(const std::string& text,
                               const NetlistCheckOptions& options = {});

struct GateOptions {
  /// false downgrades the gate to report-only: diagnostics are computed
  /// (and discarded) but never abort the solve.
  bool enabled = true;
  /// Minimum severity that aborts the solve (throws CheckError).
  Severity abort_at = Severity::kError;
  NetlistCheckOptions checks;
};

/// Arms the circuit's pre-solve gate with the structural passes: the first
/// Newton solve of any analysis (dcop, dcsweep, transient) first runs
/// check_circuit and throws CheckError when the report reaches
/// `options.abort_at`. Re-arms automatically when devices are added.
void install_presolve_gate(spice::Circuit& circuit, GateOptions options = {});

}  // namespace ftl::check
