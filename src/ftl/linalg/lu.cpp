#include "ftl/linalg/lu.hpp"

#include <cmath>
#include <numeric>

#include "ftl/util/error.hpp"

namespace ftl::linalg {

LuFactorization::LuFactorization(Matrix a, double pivot_floor)
    : lu_(std::move(a)) {
  factorize(pivot_floor);
}

void LuFactorization::refactor(const Matrix& a, double pivot_floor) {
  lu_ = a;  // copy-assign reuses the existing allocation when sizes match
  factorize(pivot_floor);
}

void LuFactorization::factorize(double pivot_floor) {
  FTL_EXPECTS(lu_.rows() == lu_.cols());
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  sign_ = 1;
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  double* m = lu_.data();

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search in column k.
    std::size_t piv = k;
    double best = std::fabs(m[k * n + k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(m[r * n + k]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best <= pivot_floor) {
      throw ftl::Error("LU: singular matrix (pivot " + std::to_string(best) +
                       " at column " + std::to_string(k) + ")");
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m[k * n + c], m[piv * n + c]);
      std::swap(perm_[k], perm_[piv]);
      sign_ = -sign_;
    }
    const double pivot = m[k * n + k];
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = m[r * n + k] / pivot;
      m[r * n + k] = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) m[r * n + c] -= factor * m[k * n + c];
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  Vector x;
  solve(b, x);
  return x;
}

void LuFactorization::solve(const Vector& b, Vector& x) const {
  const std::size_t n = lu_.rows();
  FTL_EXPECTS(b.size() == n);
  const double* m = lu_.data();

  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];

  // Forward substitution with unit lower triangle.
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= m[i * n + j] * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= m[ii * n + j] * x[j];
    x[ii] = acc / m[ii * n + ii];
  }
}

double LuFactorization::determinant() const {
  const std::size_t n = lu_.rows();
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < n; ++i) det *= lu_(i, i);
  return det;
}

Vector solve(Matrix a, const Vector& b) {
  return LuFactorization(std::move(a)).solve(b);
}

}  // namespace ftl::linalg
