#pragma once
// Dense row-major matrix and vector helpers for the circuit and fitting
// numerics. Circuit matrices in this project stay small (≲ a few hundred
// unknowns), so a cache-friendly dense representation with partial-pivot LU
// outperforms a sparse package at these sizes and keeps the solver simple.

#include <cstddef>
#include <vector>

namespace ftl::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Sets every element to `value`.
  void fill(double value);

  /// Resizes, discarding contents, and fills with zero.
  void assign(std::size_t rows, std::size_t cols);

  /// y = A * x
  Vector multiply(const Vector& x) const;

  /// C = A^T * A  (used by the normal-equations path in Levenberg–Marquardt)
  Matrix gram() const;

  /// y = A^T * x
  Vector transpose_multiply(const Vector& x) const;

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm.
double norm2(const Vector& v);

/// Infinity norm.
double norm_inf(const Vector& v);

/// Dot product; requires equal sizes.
double dot(const Vector& a, const Vector& b);

/// out = a + s * b; requires equal sizes.
Vector axpy(const Vector& a, double s, const Vector& b);

/// Uniformly spaced values from `first` to `last` inclusive (count >= 2),
/// or the single value `first` when count == 1.
Vector linspace(double first, double last, std::size_t count);

}  // namespace ftl::linalg
