#pragma once
// Jacobi-preconditioned conjugate gradients for the SPD network Laplacians
// produced by the TCAD resistor-network solver.

#include "ftl/linalg/sparse.hpp"

namespace ftl::linalg {

struct CgOptions {
  int max_iterations = 2000;
  double tolerance = 1e-12;  ///< relative residual ||r|| / ||b||
};

struct CgResult {
  Vector x;
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Solves A x = b for symmetric positive definite A.
/// `initial` (optional) warm-starts the iteration — the TCAD sweeps reuse
/// the previous bias point's solution.
CgResult conjugate_gradient(const SparseMatrix& a, const Vector& b,
                            const Vector& initial = {},
                            const CgOptions& options = {});

}  // namespace ftl::linalg
