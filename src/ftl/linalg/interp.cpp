#include "ftl/linalg/interp.hpp"

#include <algorithm>

#include "ftl/util/error.hpp"

namespace ftl::linalg {

double interp1(const Vector& xs, const Vector& ys, double x) {
  FTL_EXPECTS(!xs.empty() && xs.size() == ys.size());
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double span = xs[hi] - xs[lo];
  FTL_EXPECTS(span > 0.0);
  const double t = (x - xs[lo]) / span;
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

std::optional<double> first_crossing(const Vector& xs, const Vector& ys,
                                     double level, bool rising) {
  FTL_EXPECTS(xs.size() == ys.size());
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double a = ys[i - 1];
    const double b = ys[i];
    const bool crosses = rising ? (a < level && b >= level)
                                : (a > level && b <= level);
    if (!crosses) continue;
    const double dy = b - a;
    if (dy == 0.0) return xs[i];
    const double t = (level - a) / dy;
    return xs[i - 1] + t * (xs[i] - xs[i - 1]);
  }
  return std::nullopt;
}

}  // namespace ftl::linalg
