#pragma once
// Partial-pivot LU factorization and solve. This is the linear kernel under
// every Newton iteration in the circuit simulator and the TCAD network
// solver, and under the normal equations in Levenberg–Marquardt.

#include <vector>

#include "ftl/linalg/matrix.hpp"

namespace ftl::linalg {

/// LU factorization with row partial pivoting: P*A = L*U.
/// Construction factors immediately; throws ftl::Error on a singular matrix.
class LuFactorization {
 public:
  /// Empty factorization; factor with refactor() before solving.
  LuFactorization() = default;

  /// Factors `a` (square). `pivot_floor` is the smallest acceptable absolute
  /// pivot; below it the matrix is reported singular.
  explicit LuFactorization(Matrix a, double pivot_floor = 1e-300);

  /// Factors a fresh matrix, reusing this object's storage (no allocation
  /// when the size is unchanged) — the Newton-loop path, where the matrix
  /// is refilled every iteration. Throws ftl::Error when singular.
  void refactor(const Matrix& a, double pivot_floor = 1e-300);

  /// Solves A x = b for one right-hand side.
  Vector solve(const Vector& b) const;
  /// Solve variant writing into a caller-owned vector (hoists allocation).
  void solve(const Vector& b, Vector& x) const;

  std::size_t size() const { return lu_.rows(); }

  /// Product of U's diagonal with pivot sign — the determinant of A.
  double determinant() const;

 private:
  void factorize(double pivot_floor);

  Matrix lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
};

/// One-shot convenience: solves A x = b. Throws ftl::Error when singular.
Vector solve(Matrix a, const Vector& b);

}  // namespace ftl::linalg
