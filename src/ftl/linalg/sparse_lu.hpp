#pragma once
// Sparse LU factorization (Gilbert-Peierls left-looking algorithm) with row
// partial pivoting and symbolic-analysis reuse. This is the fast path under
// every Newton iteration of the circuit simulator: the MNA matrix of a
// switching lattice is >95% zeros, so the O(n^3) dense elimination is
// replaced by work proportional to the fill-in actually produced.
//
// Usage pattern for a Newton/sweep/transient loop whose matrix keeps one
// sparsity pattern while its values change:
//
//   SparseLu lu;
//   lu.factor(a0);                 // full factor: DFS symbolic + pivoting
//   for (each later iteration) {
//     if (!lu.refactor(ai)) lu.factor(ai);   // numeric-only; re-pivot on
//     x = lu.solve(b);                       // degraded pivots
//   }
//
// refactor() replays the recorded elimination pattern and pivot order with
// new values — no DFS — and verifies per column that the recorded pivot is
// exactly the row a fresh factorization would choose. On success the factors
// are therefore bitwise identical to factor(a); on drift it reports false,
// signalling the caller to re-run the full factorization. That equivalence
// is what lets the batched corner engine (SparseLuBatch below) mix replayed
// and fully-refactored lanes while staying bit-for-bit reproducible.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ftl/linalg/sparse.hpp"

namespace ftl::linalg {

struct SparseLuOptions {
  /// Smallest acceptable |pivot|; below it the matrix is singular.
  double pivot_floor = 1e-300;
  /// Full factor: prefer the diagonal entry when it is at least this
  /// fraction of the column maximum (reduces permutation churn and fill).
  double diag_preference = 0.1;
  /// refactor(): a reused pivot must keep at least this fraction of its
  /// column's magnitude or the refactorization is rejected.
  double refactor_rel = 1e-4;
};

class SparseLu {
 public:
  using Options = SparseLuOptions;

  SparseLu() = default;

  /// Full factorization of the square CSR matrix `a` (symbolic + numeric,
  /// row partial pivoting). Throws ftl::Error when singular.
  void factor(const CsrView& a, const Options& options = SparseLuOptions());
  void factor(const SparseMatrix& a, const Options& options = SparseLuOptions());

  /// Numeric-only refactorization of a matrix with the SAME sparsity
  /// pattern as the one passed to factor(). Returns false when no
  /// factorization exists yet, the pattern differs, the recorded pivot of
  /// some column is no longer the one a fresh factor() would select (pivot
  /// order drift), or a reused pivot degrades below `refactor_rel` times its
  /// column magnitude; the factors are then in an unspecified state and the
  /// caller must run factor(). On success the factors are bitwise identical
  /// to what factor(a) would have produced.
  bool refactor(const CsrView& a, const Options& options = SparseLuOptions());
  bool refactor(const SparseMatrix& a, const Options& options = SparseLuOptions());

  /// Solves A x = b with the current factors.
  Vector solve(const Vector& b) const;
  void solve(const Vector& b, Vector& x) const;

  bool factored() const { return n_ > 0; }
  std::size_t size() const { return n_; }
  /// Stored factor entries (L strictly lower + U upper incl. diagonal) —
  /// the fill-in diagnostic.
  std::size_t factor_nonzeros() const {
    return l_values_.size() + u_values_.size() + n_;
  }

 private:
  friend class SparseLuBatch;

  void transpose_to_csc(const CsrView& a);
  bool pattern_matches(const CsrView& a) const;

  /// The refactor() engine with externally-owned value storage: replays this
  /// factorization's recorded elimination into the given L/U value arrays
  /// (sized like l_values_/u_values_/u_diag_), using `x` as the scatter
  /// workspace. Const: the symbolic record is read-only, so one analysis can
  /// back many value lanes.
  bool refactor_into(const CsrView& a, const Options& options, double* l_values,
                     double* u_values, double* u_diag,
                     std::vector<double>& x) const;

  /// solve() against externally-owned value arrays (same layout).
  void solve_with(const double* l_values, const double* u_values,
                  const double* u_diag, const Vector& b, Vector& x) const;

  std::size_t n_ = 0;

  // CSC pattern of the input plus the CSC->CSR position permutation, so
  // numeric passes gather values straight out of the caller's CSR array.
  std::vector<std::size_t> acol_start_, arow_index_, aperm_;
  // Cached CSR pattern of the factored matrix, for refactor validation.
  std::vector<std::size_t> csr_row_start_, csr_col_index_;

  // L: unit lower triangular, CSC, strict sub-diagonal entries only.
  //   l_rows_   — original row index (the factorization's working frame)
  //   l_pivot_rows_ — the same entries mapped through pinv_ (solve frame)
  std::vector<std::size_t> l_col_start_, l_rows_, l_pivot_rows_;
  std::vector<double> l_values_;
  // U: upper triangular, CSC, strict super-diagonal entries (pivot-frame
  // rows) + diagonal.
  std::vector<std::size_t> u_col_start_, u_rows_;
  std::vector<double> u_values_;
  std::vector<double> u_diag_;

  std::vector<std::size_t> perm_;  // perm_[k] = original row pivotal at step k
  std::vector<std::size_t> pinv_;  // pinv_[orig row] = pivot step

  // Symbolic record for refactor(): per-column reach sets (topological
  // order) of the sparse triangular solves.
  std::vector<std::size_t> reach_start_, reach_;

  // Workspaces reused across calls (sized n_).
  std::vector<double> x_;
  std::vector<int> mark_;
  std::vector<std::size_t> dfs_stack_, dfs_edge_;
};

struct SparseLuBatchCounters {
  std::uint64_t symbolic_factors = 0;  ///< full (symbolic + numeric) analyses
  std::uint64_t symbolic_reuses = 0;   ///< lane factors replayed off the shared record
  std::uint64_t numeric_refactors = 0; ///< accepted numeric-only replays (shared + per-lane)
  std::uint64_t lane_fallbacks = 0;    ///< replays rejected -> full factor for one lane
};

/// K numeric factorizations over ONE symbolic analysis. The first
/// factor_lane() call performs the full Gilbert-Peierls factorization and
/// records the elimination pattern; every other (lane, matrix) pair with the
/// same sparsity pattern replays that record numerically into the lane's own
/// contiguous value block — no DFS, no allocation, no pivot search beyond
/// the exact-match verification. A lane whose values break the recorded
/// pivot order falls back to a private full factorization for that lane
/// only; because an accepted replay is bitwise identical to a fresh
/// factor(), mixing replayed and fallback lanes cannot change any result.
///
/// Single-threaded by design: callers wanting parallelism split lanes
/// across per-thread SparseLuBatch instances (threads split the batch, not
/// the lane).
class SparseLuBatch {
 public:
  using Options = SparseLuOptions;

  /// Readies `lanes` value slots; drops any shared analysis and all
  /// per-lane state.
  void reset(std::size_t lanes);

  /// Drops the shared symbolic analysis and per-lane factors (call when the
  /// assembly reports a sparsity-pattern change). Lane count is kept.
  void invalidate();

  std::size_t lanes() const { return lanes_; }
  bool analyzed() const { return shared_.factored(); }

  /// Factors `a` into lane `lane`'s value block (see class comment).
  /// Throws ftl::Error when `a` is singular — exactly when a standalone
  /// SparseLu::factor(a) would.
  void factor_lane(std::size_t lane, const CsrView& a,
                   const Options& options = SparseLuOptions());

  /// Solves A x = b with lane `lane`'s current factors.
  void solve_lane(std::size_t lane, const Vector& b, Vector& x) const;

  /// Batch wrappers: lane i takes matrices[i] / rhs[i], in lane order.
  void refactor_batch(const std::vector<CsrView>& matrices,
                      const Options& options = SparseLuOptions());
  void solve_batch(const std::vector<Vector>& rhs,
                   std::vector<Vector>& x) const;

  const SparseLuBatchCounters& counters() const { return counters_; }

 private:
  enum class LaneState : unsigned char { kEmpty, kShared, kPrivate };

  std::size_t lanes_ = 0;
  SparseLu shared_;  ///< symbolic owner; its own values belong to no lane
  // Lane-blocked value arrays: lane i's L values occupy
  // lane_l_[i * l_stride_ .. (i + 1) * l_stride_), and likewise for U.
  std::size_t l_stride_ = 0, u_stride_ = 0;
  std::vector<double> lane_l_, lane_u_, lane_d_;
  std::vector<double> x_;  ///< scatter workspace shared by the replays
  std::vector<LaneState> state_;
  /// Fallback factorizations, allocated only for lanes that ever needed one.
  std::vector<std::unique_ptr<SparseLu>> fallback_;
  SparseLuBatchCounters counters_;
};

}  // namespace ftl::linalg
