#pragma once
// Sparse LU factorization (Gilbert-Peierls left-looking algorithm) with row
// partial pivoting and symbolic-analysis reuse. This is the fast path under
// every Newton iteration of the circuit simulator: the MNA matrix of a
// switching lattice is >95% zeros, so the O(n^3) dense elimination is
// replaced by work proportional to the fill-in actually produced.
//
// Usage pattern for a Newton/sweep/transient loop whose matrix keeps one
// sparsity pattern while its values change:
//
//   SparseLu lu;
//   lu.factor(a0);                 // full factor: DFS symbolic + pivoting
//   for (each later iteration) {
//     if (!lu.refactor(ai)) lu.factor(ai);   // numeric-only; re-pivot on
//     x = lu.solve(b);                       // degraded pivots
//   }
//
// refactor() replays the recorded elimination pattern and pivot order with
// new values — no DFS, no pivot search — and reports false when a reused
// pivot loses too much magnitude, signalling the caller to re-run the full
// factorization.

#include <cstddef>
#include <vector>

#include "ftl/linalg/sparse.hpp"

namespace ftl::linalg {

struct SparseLuOptions {
  /// Smallest acceptable |pivot|; below it the matrix is singular.
  double pivot_floor = 1e-300;
  /// Full factor: prefer the diagonal entry when it is at least this
  /// fraction of the column maximum (reduces permutation churn and fill).
  double diag_preference = 0.1;
  /// refactor(): a reused pivot must keep at least this fraction of its
  /// column's magnitude or the refactorization is rejected.
  double refactor_rel = 1e-4;
};

class SparseLu {
 public:
  using Options = SparseLuOptions;

  SparseLu() = default;

  /// Full factorization of the square CSR matrix `a` (symbolic + numeric,
  /// row partial pivoting). Throws ftl::Error when singular.
  void factor(const CsrView& a, const Options& options = SparseLuOptions());
  void factor(const SparseMatrix& a, const Options& options = SparseLuOptions());

  /// Numeric-only refactorization of a matrix with the SAME sparsity
  /// pattern as the one passed to factor(). Returns false when no
  /// factorization exists yet, the pattern differs, or a reused pivot
  /// degrades below `refactor_rel` times its column magnitude; the factors
  /// are then in an unspecified state and the caller must run factor().
  bool refactor(const CsrView& a, const Options& options = SparseLuOptions());
  bool refactor(const SparseMatrix& a, const Options& options = SparseLuOptions());

  /// Solves A x = b with the current factors.
  Vector solve(const Vector& b) const;
  void solve(const Vector& b, Vector& x) const;

  bool factored() const { return n_ > 0; }
  std::size_t size() const { return n_; }
  /// Stored factor entries (L strictly lower + U upper incl. diagonal) —
  /// the fill-in diagnostic.
  std::size_t factor_nonzeros() const {
    return l_values_.size() + u_values_.size() + n_;
  }

 private:
  void transpose_to_csc(const CsrView& a);
  bool pattern_matches(const CsrView& a) const;

  std::size_t n_ = 0;

  // CSC pattern of the input plus the CSC->CSR position permutation, so
  // numeric passes gather values straight out of the caller's CSR array.
  std::vector<std::size_t> acol_start_, arow_index_, aperm_;
  // Cached CSR pattern of the factored matrix, for refactor validation.
  std::vector<std::size_t> csr_row_start_, csr_col_index_;

  // L: unit lower triangular, CSC, strict sub-diagonal entries only.
  //   l_rows_   — original row index (the factorization's working frame)
  //   l_pivot_rows_ — the same entries mapped through pinv_ (solve frame)
  std::vector<std::size_t> l_col_start_, l_rows_, l_pivot_rows_;
  std::vector<double> l_values_;
  // U: upper triangular, CSC, strict super-diagonal entries (pivot-frame
  // rows) + diagonal.
  std::vector<std::size_t> u_col_start_, u_rows_;
  std::vector<double> u_values_;
  std::vector<double> u_diag_;

  std::vector<std::size_t> perm_;  // perm_[k] = original row pivotal at step k
  std::vector<std::size_t> pinv_;  // pinv_[orig row] = pivot step

  // Symbolic record for refactor(): per-column reach sets (topological
  // order) of the sparse triangular solves.
  std::vector<std::size_t> reach_start_, reach_;

  // Workspaces reused across calls (sized n_).
  std::vector<double> x_;
  std::vector<int> mark_;
  std::vector<std::size_t> dfs_stack_, dfs_edge_;
};

}  // namespace ftl::linalg
