#pragma once
// Compressed-sparse-row matrix shared by the TCAD resistor-network solver
// (SPD Laplacians paired with CG) and the circuit simulator's sparse MNA
// path (unsymmetric systems paired with the Gilbert-Peierls LU in
// sparse_lu.hpp).

#include <cstddef>
#include <vector>

#include "ftl/linalg/matrix.hpp"

namespace ftl::linalg {

/// Coordinate-format accumulator; duplicate entries are summed on build.
class TripletList {
 public:
  TripletList(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  void add(std::size_t r, std::size_t c, double v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Entry> entries_;
};

/// Non-owning view of a CSR matrix — the handoff format between the MNA
/// assembly buffers and the sparse factorization.
struct CsrView {
  std::size_t n = 0;  ///< square dimension
  const std::size_t* row_start = nullptr;  ///< n + 1 entries
  const std::size_t* col_index = nullptr;
  const double* values = nullptr;
  std::size_t nonzeros() const { return row_start ? row_start[n] : 0; }
};

/// CSR sparse matrix.
class SparseMatrix {
 public:
  /// Whether positions that sum to exactly zero are kept in the stored
  /// pattern. kKeep makes the pattern a function of structure alone, which
  /// factorization reuse across value changes depends on.
  enum class ZeroPolicy { kDrop, kKeep };

  SparseMatrix() = default;

  /// Builds from triplets, summing duplicates. kDrop (the default) also
  /// prunes entries that cancel to zero.
  explicit SparseMatrix(const TripletList& triplets,
                        ZeroPolicy policy = ZeroPolicy::kDrop);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  const std::vector<std::size_t>& row_start() const { return row_start_; }
  const std::vector<std::size_t>& col_index() const { return col_index_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// CSR view of a square matrix (FTL_EXPECTS rows == cols).
  CsrView view() const;

  /// y = A * x
  Vector multiply(const Vector& x) const;

  /// Diagonal entries (zero where absent) — the Jacobi preconditioner.
  Vector diagonal() const;

  /// Dense copy (tests and small-system fallbacks).
  Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_start_;
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

}  // namespace ftl::linalg
