#pragma once
// Compressed-sparse-row matrix for the TCAD resistor-network solver. The
// network Laplacians there are symmetric positive definite after Dirichlet
// elimination, so they pair with the conjugate-gradient solver in cg.hpp.

#include <cstddef>
#include <vector>

#include "ftl/linalg/matrix.hpp"

namespace ftl::linalg {

/// Coordinate-format accumulator; duplicate entries are summed on build.
class TripletList {
 public:
  TripletList(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  void add(std::size_t r, std::size_t c, double v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Entry> entries_;
};

/// CSR sparse matrix.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from triplets, summing duplicates and dropping explicit zeros.
  explicit SparseMatrix(const TripletList& triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A * x
  Vector multiply(const Vector& x) const;

  /// Diagonal entries (zero where absent) — the Jacobi preconditioner.
  Vector diagonal() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_start_;
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

}  // namespace ftl::linalg
