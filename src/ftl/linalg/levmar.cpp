#include "ftl/linalg/levmar.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/linalg/lu.hpp"
#include "ftl/util/error.hpp"

namespace ftl::linalg {
namespace {

void clamp_to_bounds(Vector& p, const LevMarOptions& o) {
  if (!o.lower_bounds.empty()) {
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = std::max(p[i], o.lower_bounds[i]);
  }
  if (!o.upper_bounds.empty()) {
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = std::min(p[i], o.upper_bounds[i]);
  }
}

double sum_squares(const Vector& r) {
  double acc = 0.0;
  for (double x : r) acc += x * x;
  return acc;
}

}  // namespace

LevMarResult levenberg_marquardt(const ResidualFn& fn, Vector initial,
                                 std::size_t residual_count,
                                 const LevMarOptions& options) {
  const std::size_t np = initial.size();
  FTL_EXPECTS(np > 0 && residual_count >= np);
  if (!options.lower_bounds.empty() && options.lower_bounds.size() != np) {
    throw ftl::Error("levmar: lower_bounds size mismatch");
  }
  if (!options.upper_bounds.empty() && options.upper_bounds.size() != np) {
    throw ftl::Error("levmar: upper_bounds size mismatch");
  }

  Vector p = std::move(initial);
  clamp_to_bounds(p, options);

  Vector r(residual_count, 0.0);
  fn(p, r);
  double cost = sum_squares(r);

  Matrix jac(residual_count, np);
  Vector r_pert(residual_count, 0.0);
  double lambda = options.initial_lambda;

  LevMarResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Forward-difference Jacobian.
    for (std::size_t j = 0; j < np; ++j) {
      const double h = options.fd_step * std::max(std::fabs(p[j]), 1e-9);
      Vector pj = p;
      pj[j] += h;
      clamp_to_bounds(pj, options);
      const double actual_h = pj[j] - p[j];
      if (actual_h == 0.0) {
        // Pinned at a bound; probe in the other direction.
        pj = p;
        pj[j] -= h;
        clamp_to_bounds(pj, options);
      }
      const double denom = pj[j] - p[j];
      fn(pj, r_pert);
      if (denom == 0.0) {
        for (std::size_t i = 0; i < residual_count; ++i) jac(i, j) = 0.0;
      } else {
        for (std::size_t i = 0; i < residual_count; ++i) {
          jac(i, j) = (r_pert[i] - r[i]) / denom;
        }
      }
    }

    const Vector grad = jac.transpose_multiply(r);
    if (norm_inf(grad) < options.gradient_tol) {
      result.converged = true;
      break;
    }

    const Matrix jtj = jac.gram();
    bool accepted = false;
    for (int attempt = 0; attempt < 30 && !accepted; ++attempt) {
      Matrix damped = jtj;
      for (std::size_t i = 0; i < np; ++i) {
        damped(i, i) += lambda * std::max(jtj(i, i), 1e-12);
      }
      Vector rhs(np);
      for (std::size_t i = 0; i < np; ++i) rhs[i] = -grad[i];

      Vector step;
      try {
        step = solve(std::move(damped), rhs);
      } catch (const ftl::Error&) {
        lambda *= options.lambda_up;
        continue;
      }

      Vector candidate = axpy(p, 1.0, step);
      clamp_to_bounds(candidate, options);
      fn(candidate, r_pert);
      const double new_cost = sum_squares(r_pert);
      if (new_cost < cost) {
        const double rel_step = norm2(step) / std::max(norm2(p), 1e-12);
        p = std::move(candidate);
        r = r_pert;
        cost = new_cost;
        lambda = std::max(lambda * options.lambda_down, 1e-14);
        accepted = true;
        if (rel_step < options.step_tol) {
          result.converged = true;
        }
      } else {
        lambda *= options.lambda_up;
      }
    }
    if (!accepted || result.converged) {
      result.converged = result.converged || !accepted;
      break;
    }
  }

  result.parameters = std::move(p);
  result.rms = std::sqrt(cost / static_cast<double>(residual_count));
  return result;
}

}  // namespace ftl::linalg
