#include "ftl/linalg/cg.hpp"

#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::linalg {

CgResult conjugate_gradient(const SparseMatrix& a, const Vector& b,
                            const Vector& initial, const CgOptions& options) {
  FTL_EXPECTS(a.rows() == a.cols() && b.size() == a.rows());
  const std::size_t n = b.size();

  CgResult result;
  result.x = initial.empty() ? Vector(n, 0.0) : initial;
  FTL_EXPECTS(result.x.size() == n);

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    result.x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  Vector inv_diag = a.diagonal();
  for (double& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  Vector r = b;
  {
    const Vector ax = a.multiply(result.x);
    for (std::size_t i = 0; i < n; ++i) r[i] -= ax[i];
  }
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  Vector p = z;
  double rz = dot(r, z);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const Vector ap = a.multiply(p);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or breakdown) — report non-convergence
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rnorm = norm2(r);
    result.relative_residual = rnorm / bnorm;
    if (result.relative_residual < options.tolerance) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

}  // namespace ftl::linalg
