#pragma once
// 1-D piecewise-linear interpolation over monotonically increasing abscissae.
// Used for PWL sources, waveform sampling, and crossing detection in
// measurements.

#include <optional>

#include "ftl/linalg/matrix.hpp"

namespace ftl::linalg {

/// Linear interpolation of (xs, ys) at `x`. xs must be strictly increasing
/// with at least one point; values outside the range clamp to the endpoints.
double interp1(const Vector& xs, const Vector& ys, double x);

/// First x at which the piecewise-linear curve (xs, ys) crosses `level`
/// moving in the requested direction. `rising` selects upward crossings.
std::optional<double> first_crossing(const Vector& xs, const Vector& ys,
                                     double level, bool rising);

}  // namespace ftl::linalg
