#pragma once
// Levenberg–Marquardt nonlinear least squares.
//
// Stands in for the MATLAB Curve Fitting Toolbox the paper used to extract
// Kp, Vth and lambda from the TCAD data (§IV): minimizes ||r(p)||² over
// parameters p with finite-difference Jacobians and an adaptive damping
// schedule.

#include <functional>

#include "ftl/linalg/matrix.hpp"

namespace ftl::linalg {

/// Residual callback: fills `r` (fixed size) from parameters `p`.
using ResidualFn = std::function<void(const Vector& p, Vector& r)>;

struct LevMarOptions {
  int max_iterations = 200;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;      ///< damping increase on a rejected step
  double lambda_down = 0.25;    ///< damping decrease on an accepted step
  double gradient_tol = 1e-12;  ///< stop when ||J^T r||_inf falls below this
  double step_tol = 1e-12;      ///< stop when the relative step is below this
  double fd_step = 1e-6;        ///< relative finite-difference step
  Vector lower_bounds;          ///< optional box bounds (empty = unbounded)
  Vector upper_bounds;
};

struct LevMarResult {
  Vector parameters;
  double rms = 0.0;          ///< sqrt(mean squared residual) at the solution
  int iterations = 0;
  bool converged = false;
};

/// Minimizes the sum of squared residuals starting from `initial`.
/// `residual_count` is the fixed length of the residual vector.
/// Throws ftl::Error on inconsistent option/bound sizes.
LevMarResult levenberg_marquardt(const ResidualFn& fn, Vector initial,
                                 std::size_t residual_count,
                                 const LevMarOptions& options = {});

}  // namespace ftl::linalg
