#include "ftl/linalg/matrix.hpp"

#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  FTL_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  FTL_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Matrix::fill(double value) {
  for (double& x : data_) x = value;
}

void Matrix::assign(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Vector Matrix::multiply(const Vector& x) const {
  FTL_EXPECTS(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (std::size_t i = 0; i < cols_; ++i) {
      if (row[i] == 0.0) continue;
      for (std::size_t j = 0; j < cols_; ++j) g(i, j) += row[i] * row[j];
    }
  }
  return g;
}

Vector Matrix::transpose_multiply(const Vector& x) const {
  FTL_EXPECTS(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * x[r];
  }
  return y;
}

double norm2(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc = std::max(acc, std::fabs(x));
  return acc;
}

double dot(const Vector& a, const Vector& b) {
  FTL_EXPECTS(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  FTL_EXPECTS(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Vector linspace(double first, double last, std::size_t count) {
  FTL_EXPECTS(count >= 1);
  Vector out(count);
  if (count == 1) {
    out[0] = first;
    return out;
  }
  const double step = (last - first) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = first + step * static_cast<double>(i);
  }
  out.back() = last;  // avoid accumulated rounding on the endpoint
  return out;
}

}  // namespace ftl::linalg
