#include "ftl/linalg/sparse.hpp"

#include <algorithm>

#include "ftl/util/error.hpp"

namespace ftl::linalg {

void TripletList::add(std::size_t r, std::size_t c, double v) {
  FTL_EXPECTS(r < rows_ && c < cols_);
  // Structural zeros are recorded too: under ZeroPolicy::kKeep the position
  // set must reflect every stamped location, value or no value.
  entries_.push_back({r, c, v});
}

SparseMatrix::SparseMatrix(const TripletList& triplets, ZeroPolicy policy)
    : rows_(triplets.rows()), cols_(triplets.cols()) {
  std::vector<TripletList::Entry> sorted = triplets.entries();
  // stable_sort, not sort: duplicate (row, col) entries must accumulate in
  // insertion order, so a first-pass merge sums a slot in exactly the order
  // later pattern-cached assemblies add into it (bitwise-reproducible MNA
  // values whether or not the pattern was already frozen).
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TripletList::Entry& a, const TripletList::Entry& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });

  row_start_.assign(rows_ + 1, 0);
  col_index_.reserve(sorted.size());
  values_.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    double acc = 0.0;
    while (j < sorted.size() && sorted[j].row == sorted[i].row &&
           sorted[j].col == sorted[i].col) {
      acc += sorted[j].value;
      ++j;
    }
    if (acc != 0.0 || policy == ZeroPolicy::kKeep) {
      col_index_.push_back(sorted[i].col);
      values_.push_back(acc);
      ++row_start_[sorted[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_start_[r + 1] += row_start_[r];
}

CsrView SparseMatrix::view() const {
  FTL_EXPECTS(rows_ == cols_);
  CsrView v;
  v.n = rows_;
  v.row_start = row_start_.data();
  v.col_index = col_index_.data();
  v.values = values_.data();
  return v;
}

Matrix SparseMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      m(r, col_index_[k]) += values_[k];
    }
  }
  return m;
}

Vector SparseMatrix::multiply(const Vector& x) const {
  FTL_EXPECTS(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      acc += values_[k] * x[col_index_[k]];
    }
    y[r] = acc;
  }
  return y;
}

Vector SparseMatrix::diagonal() const {
  Vector d(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < d.size(); ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      if (col_index_[k] == r) d[r] += values_[k];
    }
  }
  return d;
}

}  // namespace ftl::linalg
