#include "ftl/linalg/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "ftl/util/error.hpp"

namespace ftl::linalg {
namespace {

constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

}  // namespace

void SparseLu::transpose_to_csc(const CsrView& a) {
  const std::size_t n = a.n;
  const std::size_t nnz = a.nonzeros();
  acol_start_.assign(n + 1, 0);
  arow_index_.resize(nnz);
  aperm_.resize(nnz);
  for (std::size_t p = 0; p < nnz; ++p) ++acol_start_[a.col_index[p] + 1];
  for (std::size_t c = 0; c < n; ++c) acol_start_[c + 1] += acol_start_[c];
  std::vector<std::size_t> cursor(acol_start_.begin(), acol_start_.end() - 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = a.row_start[r]; p < a.row_start[r + 1]; ++p) {
      const std::size_t q = cursor[a.col_index[p]]++;
      arow_index_[q] = r;
      aperm_[q] = p;
    }
  }
}

bool SparseLu::pattern_matches(const CsrView& a) const {
  if (a.n != n_ || a.nonzeros() != csr_col_index_.size()) return false;
  for (std::size_t r = 0; r <= n_; ++r) {
    if (a.row_start[r] != csr_row_start_[r]) return false;
  }
  for (std::size_t p = 0; p < csr_col_index_.size(); ++p) {
    if (a.col_index[p] != csr_col_index_[p]) return false;
  }
  return true;
}

void SparseLu::factor(const CsrView& a, const Options& options) {
  FTL_EXPECTS(a.n > 0 && a.row_start != nullptr);
  const std::size_t n = a.n;
  n_ = n;
  csr_row_start_.assign(a.row_start, a.row_start + n + 1);
  csr_col_index_.assign(a.col_index, a.col_index + a.nonzeros());
  transpose_to_csc(a);

  l_col_start_.assign(1, 0);
  l_rows_.clear();
  l_values_.clear();
  u_col_start_.assign(1, 0);
  u_rows_.clear();
  u_values_.clear();
  u_diag_.assign(n, 0.0);
  perm_.assign(n, kUnassigned);
  pinv_.assign(n, kUnassigned);
  reach_start_.assign(1, 0);
  reach_.clear();

  x_.assign(n, 0.0);
  mark_.assign(n, 0);
  dfs_stack_.resize(n);
  dfs_edge_.resize(n);
  std::vector<std::size_t> topo(n);  // reach of the current column

  for (std::size_t k = 0; k < n; ++k) {
    // --- Symbolic: reach of A(:,k) through the partial L (DFS, reverse
    // postorder so ancestors are eliminated before their dependents).
    const int gen = static_cast<int>(k) + 1;
    std::size_t top = n;
    for (std::size_t p = acol_start_[k]; p < acol_start_[k + 1]; ++p) {
      const std::size_t start = arow_index_[p];
      if (mark_[start] == gen) continue;
      std::size_t depth = 0;
      dfs_stack_[0] = start;
      const auto children_begin = [&](std::size_t j) {
        const std::size_t jcol = pinv_[j];
        return jcol == kUnassigned ? l_col_start_.back()  // no children
                                   : l_col_start_[jcol];
      };
      const auto children_end = [&](std::size_t j) {
        const std::size_t jcol = pinv_[j];
        return jcol == kUnassigned ? l_col_start_.back()
                                   : l_col_start_[jcol + 1];
      };
      mark_[start] = gen;
      dfs_edge_[0] = children_begin(start);
      while (true) {
        const std::size_t j = dfs_stack_[depth];
        const std::size_t end = children_end(j);
        bool descended = false;
        while (dfs_edge_[depth] < end) {
          const std::size_t child = l_rows_[dfs_edge_[depth]++];
          if (mark_[child] == gen) continue;
          mark_[child] = gen;
          ++depth;
          dfs_stack_[depth] = child;
          dfs_edge_[depth] = children_begin(child);
          descended = true;
          break;
        }
        if (descended) continue;
        topo[--top] = j;  // postorder: all descendants already emitted
        if (depth == 0) break;
        --depth;
      }
    }

    // --- Numeric: sparse triangular solve x = L \ A(:,k).
    for (std::size_t px = top; px < n; ++px) x_[topo[px]] = 0.0;
    for (std::size_t p = acol_start_[k]; p < acol_start_[k + 1]; ++p) {
      x_[arow_index_[p]] = a.values[aperm_[p]];
    }
    for (std::size_t px = top; px < n; ++px) {
      const std::size_t j = topo[px];
      const std::size_t jcol = pinv_[j];
      if (jcol == kUnassigned) continue;
      const double xj = x_[j];
      if (xj == 0.0) continue;
      for (std::size_t p = l_col_start_[jcol]; p < l_col_start_[jcol + 1]; ++p) {
        x_[l_rows_[p]] -= l_values_[p] * xj;
      }
    }

    // --- Pivot: largest candidate, preferring the diagonal when it holds
    // enough of the column's magnitude.
    double maxabs = 0.0;
    std::size_t pivot_row = kUnassigned;
    for (std::size_t px = top; px < n; ++px) {
      const std::size_t j = topo[px];
      if (pinv_[j] != kUnassigned) continue;
      const double v = std::fabs(x_[j]);
      if (v > maxabs) {
        maxabs = v;
        pivot_row = j;
      }
    }
    if (pivot_row == kUnassigned || maxabs <= options.pivot_floor) {
      throw ftl::Error("sparse LU: singular matrix (column " +
                       std::to_string(k) + ", max pivot " +
                       std::to_string(maxabs) + ")");
    }
    if (mark_[k] == gen && pinv_[k] == kUnassigned &&
        std::fabs(x_[k]) >= options.diag_preference * maxabs) {
      pivot_row = k;  // in-reach, unassigned, and big enough: keep the diag
    }
    const double pivot = x_[pivot_row];
    perm_[k] = pivot_row;
    pinv_[pivot_row] = k;

    // --- Store the column and its symbolic record.
    for (std::size_t px = top; px < n; ++px) {
      const std::size_t j = topo[px];
      reach_.push_back(j);
      const std::size_t jcol = pinv_[j];
      if (jcol < k) {  // eliminated: U entry in pivot-frame row jcol
        u_rows_.push_back(jcol);
        u_values_.push_back(x_[j]);
      } else if (j != pivot_row) {  // below the pivot: L entry
        l_rows_.push_back(j);
        l_values_.push_back(x_[j] / pivot);
      }
    }
    u_diag_[k] = pivot;
    reach_start_.push_back(reach_.size());
    l_col_start_.push_back(l_rows_.size());
    u_col_start_.push_back(u_rows_.size());
  }

  l_pivot_rows_.resize(l_rows_.size());
  for (std::size_t p = 0; p < l_rows_.size(); ++p) {
    l_pivot_rows_[p] = pinv_[l_rows_[p]];
  }
}

void SparseLu::factor(const SparseMatrix& a, const Options& options) {
  factor(a.view(), options);
}

bool SparseLu::refactor_into(const CsrView& a, const Options& options,
                             double* l_values, double* u_values, double* u_diag,
                             std::vector<double>& x) const {
  if (n_ == 0 || !pattern_matches(a)) return false;
  const std::size_t n = n_;
  x.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t reach_begin = reach_start_[k];
    const std::size_t reach_end = reach_start_[k + 1];
    for (std::size_t px = reach_begin; px < reach_end; ++px) {
      x[reach_[px]] = 0.0;
    }
    for (std::size_t p = acol_start_[k]; p < acol_start_[k + 1]; ++p) {
      x[arow_index_[p]] = a.values[aperm_[p]];
    }
    for (std::size_t px = reach_begin; px < reach_end; ++px) {
      const std::size_t j = reach_[px];
      const std::size_t jcol = pinv_[j];
      if (jcol >= k) continue;  // not eliminated before this column
      const double xj = x[j];
      if (xj == 0.0) continue;
      for (std::size_t p = l_col_start_[jcol]; p < l_col_start_[jcol + 1]; ++p) {
        x[l_rows_[p]] -= l_values[p] * xj;
      }
    }

    // Re-run the pivot selection exactly as factor() does. The recorded
    // reach is still in the topological order the DFS emitted it, and with
    // pinv_ holding its final values, "unassigned when column k was
    // factored" is exactly pinv_[j] >= k. Any disagreement with the
    // recorded pivot means a fresh factorization would permute differently,
    // so the replayed elimination would no longer match the symbolic
    // record: reject and let the caller re-factor.
    double maxabs = 0.0;
    std::size_t pivot_row = kUnassigned;
    bool diag_in_reach = false;
    for (std::size_t px = reach_begin; px < reach_end; ++px) {
      const std::size_t j = reach_[px];
      if (j == k) diag_in_reach = true;
      if (pinv_[j] < k) continue;  // already eliminated at step k
      const double v = std::fabs(x[j]);
      if (v > maxabs) {
        maxabs = v;
        pivot_row = j;
      }
    }
    if (pivot_row == kUnassigned || maxabs <= options.pivot_floor) {
      return false;  // factor() would throw; let it report the singularity
    }
    if (diag_in_reach && pinv_[k] >= k &&
        std::fabs(x[k]) >= options.diag_preference * maxabs) {
      pivot_row = k;  // the diagonal preference factor() would apply
    }
    if (pivot_row != perm_[k]) return false;  // pivot order drifted

    const double pivot = x[pivot_row];
    if (std::fabs(pivot) < options.refactor_rel * maxabs) {
      return false;  // factors now partially stale: caller must factor()
    }

    u_diag[k] = pivot;
    for (std::size_t p = u_col_start_[k]; p < u_col_start_[k + 1]; ++p) {
      u_values[p] = x[perm_[u_rows_[p]]];
    }
    for (std::size_t p = l_col_start_[k]; p < l_col_start_[k + 1]; ++p) {
      l_values[p] = x[l_rows_[p]] / pivot;
    }
  }
  return true;
}

bool SparseLu::refactor(const CsrView& a, const Options& options) {
  return refactor_into(a, options, l_values_.data(), u_values_.data(),
                       u_diag_.data(), x_);
}

bool SparseLu::refactor(const SparseMatrix& a, const Options& options) {
  return refactor(a.view(), options);
}

void SparseLu::solve_with(const double* l_values, const double* u_values,
                          const double* u_diag, const Vector& b,
                          Vector& x) const {
  FTL_EXPECTS(n_ > 0 && b.size() == n_);
  x.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) x[k] = b[perm_[k]];
  // Forward substitution: L is unit lower triangular in the pivot frame.
  for (std::size_t j = 0; j < n_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (std::size_t p = l_col_start_[j]; p < l_col_start_[j + 1]; ++p) {
      x[l_pivot_rows_[p]] -= l_values[p] * xj;
    }
  }
  // Back substitution on U (columns high to low).
  for (std::size_t k = n_; k-- > 0;) {
    const double xk = (x[k] /= u_diag[k]);
    if (xk == 0.0) continue;
    for (std::size_t p = u_col_start_[k]; p < u_col_start_[k + 1]; ++p) {
      x[u_rows_[p]] -= u_values[p] * xk;
    }
  }
}

void SparseLu::solve(const Vector& b, Vector& x) const {
  solve_with(l_values_.data(), u_values_.data(), u_diag_.data(), b, x);
}

Vector SparseLu::solve(const Vector& b) const {
  Vector x;
  solve(b, x);
  return x;
}

// ---------------------------------------------------------------------------
// SparseLuBatch

void SparseLuBatch::reset(std::size_t lanes) {
  lanes_ = lanes;
  shared_ = SparseLu();
  l_stride_ = u_stride_ = 0;
  lane_l_.clear();
  lane_u_.clear();
  lane_d_.clear();
  state_.assign(lanes, LaneState::kEmpty);
  fallback_.clear();
  fallback_.resize(lanes);
  counters_ = SparseLuBatchCounters();
}

void SparseLuBatch::invalidate() {
  shared_ = SparseLu();
  l_stride_ = u_stride_ = 0;
  lane_l_.clear();
  lane_u_.clear();
  lane_d_.clear();
  std::fill(state_.begin(), state_.end(), LaneState::kEmpty);
  for (auto& own : fallback_) own.reset();
}

void SparseLuBatch::factor_lane(std::size_t lane, const CsrView& a,
                                const Options& options) {
  FTL_EXPECTS(lane < lanes_);
  if (!shared_.factored()) {
    // First lane through: run the full analysis and adopt its pattern as the
    // shared symbolic record. Its values seed this lane's block. A throwing
    // factor() leaves factored() true on half-built state, so reset before
    // propagating — nothing may replay off an aborted analysis.
    try {
      shared_.factor(a, options);  // throws on singular input
    } catch (...) {
      shared_ = SparseLu();
      throw;
    }
    ++counters_.symbolic_factors;
    l_stride_ = shared_.l_values_.size();
    u_stride_ = shared_.u_values_.size();
    lane_l_.assign(lanes_ * l_stride_, 0.0);
    lane_u_.assign(lanes_ * u_stride_, 0.0);
    lane_d_.assign(lanes_ * shared_.n_, 0.0);
    std::copy(shared_.l_values_.begin(), shared_.l_values_.end(),
              lane_l_.begin() + static_cast<std::ptrdiff_t>(lane * l_stride_));
    std::copy(shared_.u_values_.begin(), shared_.u_values_.end(),
              lane_u_.begin() + static_cast<std::ptrdiff_t>(lane * u_stride_));
    std::copy(shared_.u_diag_.begin(), shared_.u_diag_.end(),
              lane_d_.begin() + static_cast<std::ptrdiff_t>(lane * shared_.n_));
    state_[lane] = LaneState::kShared;
    return;
  }
  // A lane that previously went private still tries the shared replay first:
  // acceptance is a property of the values, not of the lane's history, and a
  // replayed factor is bitwise identical to the private full factor anyway.
  double* l = lane_l_.data() + lane * l_stride_;
  double* u = lane_u_.data() + lane * u_stride_;
  double* d = lane_d_.data() + lane * shared_.n_;
  if (shared_.refactor_into(a, options, l, u, d, x_)) {
    ++counters_.symbolic_reuses;
    ++counters_.numeric_refactors;
    state_[lane] = LaneState::kShared;
    return;
  }
  ++counters_.lane_fallbacks;
  auto& own = fallback_[lane];
  if (!own) own = std::make_unique<SparseLu>();
  if (own->factored() && own->refactor(a, options)) {
    ++counters_.numeric_refactors;
  } else {
    try {
      own->factor(a, options);  // throws on singular input
    } catch (...) {
      own.reset();  // an aborted factor must not satisfy factored() later
      throw;
    }
    ++counters_.symbolic_factors;
  }
  state_[lane] = LaneState::kPrivate;
}

void SparseLuBatch::solve_lane(std::size_t lane, const Vector& b,
                               Vector& x) const {
  FTL_EXPECTS(lane < lanes_);
  FTL_EXPECTS(state_[lane] != LaneState::kEmpty);
  if (state_[lane] == LaneState::kPrivate) {
    fallback_[lane]->solve(b, x);
    return;
  }
  shared_.solve_with(lane_l_.data() + lane * l_stride_,
                     lane_u_.data() + lane * u_stride_,
                     lane_d_.data() + lane * shared_.n_, b, x);
}

void SparseLuBatch::refactor_batch(const std::vector<CsrView>& matrices,
                                   const Options& options) {
  FTL_EXPECTS(matrices.size() == lanes_);
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    factor_lane(lane, matrices[lane], options);
  }
}

void SparseLuBatch::solve_batch(const std::vector<Vector>& rhs,
                                std::vector<Vector>& x) const {
  FTL_EXPECTS(rhs.size() == lanes_);
  x.resize(lanes_);
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    solve_lane(lane, rhs[lane], x[lane]);
  }
}

}  // namespace ftl::linalg
