#pragma once
// Calibration constants of the TCAD substitute — the single place where a
// physical knob is fixed. Values come from Table II plus textbook physics;
// none is tuned per figure (see DESIGN.md §5 for the derivations and
// EXPERIMENTS.md for where the resulting predictions land vs the paper).

namespace ftl::tcad::calibration {

/// Flat-band voltage of the enhancement devices: n+ gate over the 1e17 cm^-3
/// boron substrate (work-function difference plus small fixed charge).
/// Reproduces the paper's square-device Vth pair (0.16 V HfO2 / 1.36 V SiO2)
/// from the textbook threshold equation.
inline constexpr double kFlatBandEnhancement = -0.88;  // V

/// Flat-band voltage of the junctionless device (n+ gate over n+ wire).
inline constexpr double kFlatBandJunctionless = 0.0;  // V

/// Narrow-width threshold-shift coefficient: dVth = kNarrowWidth * pi * q *
/// Na * xd^2 / (2 Cox Wgate). 0.5 accounts for the fringing geometry of a
/// gate strip; gives +0.09 V (HfO2) / +0.58 V (SiO2) on the 200 nm cross
/// arms and a negligible shift on the 1000 nm square gate.
inline constexpr double kNarrowWidth = 0.5;

/// Low-field electron mobility in the enhancement channels (m^2/Vs) and the
/// first-order mobility-degradation coefficient (1/V). Chosen once so the
/// square+HfO2 DSSS drain current at Vgs=Vds=5 V lands near the paper's
/// ~1.2 mA; every other device and material inherits the same pair.
inline constexpr double kChannelMobility = 0.0080;  // 80 cm^2/Vs
inline constexpr double kMobilityTheta = 0.10;      // 1/V

/// Electron mobility in the heavily doped (1e20 cm^-3) electrode silicon.
inline constexpr double kElectrodeMobility = 0.0070;  // 70 cm^2/Vs

/// Junctionless wire: effective donor density and channel thickness of the
/// gated cross-section. 2e20 cm^-3 / 2 nm puts Vth(HfO2) at -0.59 V
/// (paper: -0.57 V); the same constants give -2.9 V for SiO2 (paper: -4.8 V,
/// same sign and magnitude class — recorded as a divergence).
inline constexpr double kJunctionlessDonors = 2.0e26;   // m^-3
inline constexpr double kJunctionlessThickness = 2e-9;  // m
/// Surface/confinement-limited mobility of the 2 nm wire.
inline constexpr double kJunctionlessMobility = 0.0012; // 12 cm^2/Vs

/// Reverse-bias leakage density of the electrode/substrate pn junctions
/// (includes GIDL/punch-through contributions at Vds = 5 V); floors the
/// enhancement off-current near 1 nA, the decade the paper's on/off ratios
/// imply. The junctionless device sits on SiO2 with no junctions — only a
/// gate-leakage floor — which reproduces the on/off ordering of §III-B
/// (junctionless 1e7-1e8 >> enhancement 1e4-1e6). The per-dielectric gate
/// leak is calibrated to the reported junctionless decade (1e8 HfO2 /
/// 1e7 SiO2).
inline constexpr double kJunctionLeakage = 2450.0;      // A/m^2
inline constexpr double kGateLeakageHfO2 = 3.6e4;       // A/m^2
inline constexpr double kGateLeakageSiO2 = 3.5e5;       // A/m^2

/// Subthreshold conduction reference: measurement floor of the solver.
inline constexpr double kMinSheetConductance = 1e-15;  // S/square

}  // namespace ftl::tcad::calibration
