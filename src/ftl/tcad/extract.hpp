#pragma once
// Figure-of-merit extraction from I-V curves: threshold voltage by the
// maximum-transconductance (linear extrapolation) method, and the on/off
// ratio of §III-B (Ion at Vgs = 5 V, Ioff at Vgs = 0 V — or at the sweep
// minimum for the depletion-mode device, which is still ON at 0 V).

#include "ftl/linalg/matrix.hpp"

namespace ftl::tcad {

/// Max-gm threshold extraction on an Id-Vg curve taken at small `vds`:
/// extrapolates the tangent at peak gm to Id = 0 and subtracts vds/2.
/// Requires at least 3 points.
double threshold_voltage_max_gm(const linalg::Vector& vgs,
                                const linalg::Vector& id, double vds);

/// Ion/Ioff from an Id-Vg curve at Vds = 5 V. Currents are interpolated at
/// `vg_on` and `vg_off`.
double on_off_ratio(const linalg::Vector& vgs, const linalg::Vector& id,
                    double vg_on = 5.0, double vg_off = 0.0);

/// Coefficient of variation (stddev/mean) across values — used to score the
/// per-terminal symmetry of the 4-terminal I-V characteristics.
double coefficient_of_variation(const linalg::Vector& values);

}  // namespace ftl::tcad
