#pragma once
// Charge-sheet MOS physics: the per-cell sheet conductance the network
// solver assembles into a conductance Laplacian. This is the physical layer
// of the TCAD substitute — threshold voltage from flat-band + depletion
// charge (plus a narrow-width shift for the cross arms), a unified
// strong-inversion/subthreshold inversion charge, first-order mobility
// degradation, and the depletion-mode variant for the junctionless wire.

#include "ftl/tcad/device.hpp"
#include "ftl/tcad/mesh.hpp"

namespace ftl::tcad {

/// Threshold/transport model derived from a DeviceSpec.
class ChargeSheetModel {
 public:
  explicit ChargeSheetModel(const DeviceSpec& spec);

  const DeviceSpec& spec() const { return spec_; }

  /// Oxide capacitance per area, F/m^2.
  double cox() const { return cox_; }

  /// Threshold voltage including the narrow-width shift, V. Negative for
  /// the depletion-type junctionless device.
  double threshold_voltage() const { return vth_; }

  /// Narrow-width contribution alone, V.
  double narrow_width_shift() const { return narrow_shift_; }

  /// Subthreshold ideality n = 1 + Cdep/Cox.
  double ideality() const { return ideality_; }

  /// Sheet conductance (S/square) of a cell of `region` with local channel
  /// potential `v_local` and gate voltage `vg`.
  double sheet_conductance(Region region, double vg, double v_local) const;

  /// Inversion (or majority, for junctionless) mobile charge per area at the
  /// given gate overdrive state, C/m^2.
  double mobile_charge(double vg, double v_local) const;

  /// Ohmic leak conductance from a driven terminal to ground (junction
  /// leakage for enhancement devices, gate leakage for junctionless), S.
  double terminal_leak_conductance() const { return leak_conductance_; }

 private:
  DeviceSpec spec_;
  double cox_ = 0.0;
  double vth_ = 0.0;
  double narrow_shift_ = 0.0;
  double ideality_ = 1.0;
  double electrode_sheet_ = 0.0;  // S/square of n+ regions
  double full_wire_charge_ = 0.0; // junctionless saturation charge, C/m^2
  double leak_conductance_ = 0.0;
};

}  // namespace ftl::tcad
