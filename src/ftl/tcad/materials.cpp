#include "ftl/tcad/materials.hpp"

#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::tcad {

double dielectric_constant(GateDielectric d) {
  switch (d) {
    case GateDielectric::kSiO2: return 3.9;
    case GateDielectric::kHfO2: return 25.0;
  }
  throw ftl::Error("unknown dielectric");
}

std::string to_string(GateDielectric d) {
  switch (d) {
    case GateDielectric::kSiO2: return "SiO2";
    case GateDielectric::kHfO2: return "HfO2";
  }
  return "?";
}

double fermi_potential(double acceptor_density) {
  FTL_EXPECTS(acceptor_density > constants::kSiliconIntrinsic);
  return constants::kThermalVoltage *
         std::log(acceptor_density / constants::kSiliconIntrinsic);
}

double max_depletion_width(double acceptor_density) {
  const double phi_f = fermi_potential(acceptor_density);
  const double eps_si =
      constants::kSiliconPermittivity * constants::kVacuumPermittivity;
  return std::sqrt(4.0 * eps_si * phi_f /
                   (constants::kElementaryCharge * acceptor_density));
}

double depletion_charge(double acceptor_density) {
  const double phi_f = fermi_potential(acceptor_density);
  const double eps_si =
      constants::kSiliconPermittivity * constants::kVacuumPermittivity;
  return std::sqrt(2.0 * constants::kElementaryCharge * eps_si *
                   acceptor_density * 2.0 * phi_f);
}

double oxide_capacitance(GateDielectric d, double tox) {
  FTL_EXPECTS(tox > 0.0);
  return dielectric_constant(d) * constants::kVacuumPermittivity / tox;
}

}  // namespace ftl::tcad
