#include "ftl/tcad/charge_sheet.hpp"

#include <cmath>

#include "ftl/tcad/calibration.hpp"
#include "ftl/util/error.hpp"

namespace ftl::tcad {
namespace {

using namespace constants;
namespace cal = calibration;

/// Numerically safe ln(1 + e^x).
double softplus(double x) {
  if (x > 40.0) return x;
  if (x < -40.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

}  // namespace

ChargeSheetModel::ChargeSheetModel(const DeviceSpec& spec) : spec_(spec) {
  cox_ = oxide_capacitance(spec.dielectric, spec.oxide_thickness);

  if (spec.is_depletion()) {
    // Planar junctionless depletion-mode threshold:
    //   Vth = VFB - q Nd t / (2 Cox) - q Nd t^2 / (8 epsSi)
    const double eps_si = kSiliconPermittivity * kVacuumPermittivity;
    const double qnd = kElementaryCharge * spec.electrode_donors;
    const double t = spec.channel_thickness;
    vth_ = cal::kFlatBandJunctionless - qnd * t / (2.0 * cox_) -
           qnd * t * t / (8.0 * eps_si);
    ideality_ = 1.0;  // thin fully depleted body, near-ideal gate coupling
    full_wire_charge_ = qnd * t;
    electrode_sheet_ = qnd * t * cal::kJunctionlessMobility /
                       1.0;  // per square: q Nd mu t
    const double gate_leak = spec.dielectric == GateDielectric::kHfO2
                                 ? cal::kGateLeakageHfO2
                                 : cal::kGateLeakageSiO2;
    leak_conductance_ = gate_leak * spec.gate_extent * spec.gate_extent / 5.0;
  } else {
    const double phi_f = fermi_potential(spec.substrate_acceptors);
    const double qdep = depletion_charge(spec.substrate_acceptors);
    const double xd = max_depletion_width(spec.substrate_acceptors);
    const double eps_si = kSiliconPermittivity * kVacuumPermittivity;

    // Narrow-width shift: extra fringe depletion charge controlled by the
    // gate strip of width `narrow_width`.
    narrow_shift_ = 0.0;
    if (spec.narrow_width > 0.0) {
      const double pi = 3.14159265358979323846;
      narrow_shift_ = cal::kNarrowWidth * pi * kElementaryCharge *
                      spec.substrate_acceptors * xd * xd /
                      (2.0 * cox_ * spec.narrow_width);
    }
    vth_ = cal::kFlatBandEnhancement + 2.0 * phi_f + qdep / cox_ + narrow_shift_;

    const double cdep = eps_si / xd;
    ideality_ = 1.0 + cdep / cox_;
    electrode_sheet_ = kElementaryCharge * spec.electrode_donors *
                       cal::kElectrodeMobility * spec.electrode_thickness;
    leak_conductance_ =
        cal::kJunctionLeakage * spec.electrode_junction_area() / 5.0;
  }
}

double ChargeSheetModel::mobile_charge(double vg, double v_local) const {
  const double n_vt = ideality_ * kThermalVoltage;
  const double overdrive = vg - vth_ - v_local;
  const double q_raw = cox_ * n_vt * softplus(overdrive / n_vt);
  if (!spec_.is_depletion()) return q_raw;
  // The junctionless wire saturates at its full majority charge q Nd t.
  return full_wire_charge_ * std::tanh(q_raw / full_wire_charge_);
}

double ChargeSheetModel::sheet_conductance(Region region, double vg,
                                           double v_local) const {
  switch (region) {
    case Region::kOutside:
      return 0.0;
    case Region::kConductor:
      return electrode_sheet_;
    case Region::kGated: {
      const double qi = mobile_charge(vg, v_local);
      double mobility;
      if (spec_.is_depletion()) {
        mobility = cal::kJunctionlessMobility;
      } else {
        const double overdrive = std::max(vg - vth_ - v_local, 0.0);
        mobility = cal::kChannelMobility / (1.0 + cal::kMobilityTheta * overdrive);
      }
      return mobility * qi + cal::kMinSheetConductance;
    }
  }
  return 0.0;
}

}  // namespace ftl::tcad
