#include "ftl/tcad/network_solver.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/linalg/cg.hpp"
#include "ftl/linalg/interp.hpp"
#include "ftl/linalg/sparse_lu.hpp"
#include "ftl/util/error.hpp"

namespace ftl::tcad {
namespace {

/// Tabulated Kirchhoff transform of the gated material at a fixed gate
/// voltage: u = Phi(V) = integral_0^V sigma_gated(v) dv, with its inverse.
/// Phi is strictly increasing (sigma has a positive floor), so both
/// directions are plain monotone interpolations.
class KirchhoffTransform {
 public:
  KirchhoffTransform(const ChargeSheetModel& model, double vg, double v_min,
                     double v_max, int points = 2001) {
    FTL_EXPECTS(v_max > v_min && points >= 2);
    v_ = linalg::linspace(v_min, v_max, static_cast<std::size_t>(points));
    u_.assign(v_.size(), 0.0);
    sigma_.assign(v_.size(), 0.0);
    for (std::size_t i = 0; i < v_.size(); ++i) {
      sigma_[i] = model.sheet_conductance(Region::kGated, vg, v_[i]);
    }
    for (std::size_t i = 1; i < v_.size(); ++i) {
      u_[i] = u_[i - 1] + 0.5 * (sigma_[i] + sigma_[i - 1]) * (v_[i] - v_[i - 1]);
    }
    // Shift so that Phi(0) = 0 (a pure convention; only differences matter).
    const double u0 = linalg::interp1(v_, u_, 0.0);
    for (double& u : u_) u -= u0;
  }

  double forward(double v) const { return linalg::interp1(v_, u_, v); }
  double inverse(double u) const { return linalg::interp1(u_, v_, u); }
  double sigma(double v) const { return linalg::interp1(v_, sigma_, v); }

 private:
  linalg::Vector v_;
  linalg::Vector u_;
  linalg::Vector sigma_;
};

struct Edge {
  int a;
  int b;
  bool horizontal;
};

}  // namespace

NetworkSolver::NetworkSolver(DeviceMesh mesh, ChargeSheetModel model)
    : mesh_(std::move(mesh)), model_(std::move(model)) {}

SolveResult NetworkSolver::solve(const BiasPoint& bias,
                                 const linalg::Vector* warm_start,
                                 const SolverOptions& options) const {
  const int n_side = mesh_.cells_per_side;
  const int n_cells = mesh_.cell_count();

  // --- Bias bookkeeping -----------------------------------------------
  std::vector<std::optional<double>> fixed(static_cast<std::size_t>(n_cells));
  bool any_driven = false;
  double v_lo = 0.0;
  double v_hi = 0.0;
  for (int i = 0; i < n_cells; ++i) {
    const int t = mesh_.terminal[static_cast<std::size_t>(i)];
    if (t >= 0 && bias.terminal[static_cast<std::size_t>(t)].has_value()) {
      const double v = *bias.terminal[static_cast<std::size_t>(t)];
      fixed[static_cast<std::size_t>(i)] = v;
      v_lo = std::min(v_lo, v);
      v_hi = std::max(v_hi, v);
      any_driven = true;
    }
  }
  if (!any_driven) throw ftl::Error("NetworkSolver: no terminal is driven");

  const KirchhoffTransform phi(model_, bias.gate, v_lo - 1.0, v_hi + 1.0);
  const double sigma_el =
      model_.sheet_conductance(Region::kConductor, bias.gate, 0.0);

  const auto region = [&](int i) { return mesh_.region[static_cast<std::size_t>(i)]; };

  // --- Unknown numbering -----------------------------------------------
  // Gated cells solve for u; non-Dirichlet conductor cells solve for V.
  std::vector<int> gated_index(static_cast<std::size_t>(n_cells), -1);
  std::vector<int> cond_index(static_cast<std::size_t>(n_cells), -1);
  std::vector<int> gated_cells;
  std::vector<int> cond_cells;
  for (int i = 0; i < n_cells; ++i) {
    if (region(i) == Region::kGated) {
      gated_index[static_cast<std::size_t>(i)] = static_cast<int>(gated_cells.size());
      gated_cells.push_back(i);
    } else if (region(i) == Region::kConductor &&
               !fixed[static_cast<std::size_t>(i)].has_value()) {
      cond_index[static_cast<std::size_t>(i)] = static_cast<int>(cond_cells.size());
      cond_cells.push_back(i);
    }
  }

  // --- Edges -------------------------------------------------------------
  std::vector<Edge> edges;
  for (int iy = 0; iy < n_side; ++iy) {
    for (int ix = 0; ix < n_side; ++ix) {
      const int i = mesh_.index(ix, iy);
      if (region(i) == Region::kOutside) continue;
      if (ix + 1 < n_side && region(mesh_.index(ix + 1, iy)) != Region::kOutside) {
        edges.push_back({i, mesh_.index(ix + 1, iy), true});
      }
      if (iy + 1 < n_side && region(mesh_.index(ix, iy + 1)) != Region::kOutside) {
        edges.push_back({i, mesh_.index(ix, iy + 1), false});
      }
    }
  }

  // --- State -------------------------------------------------------------
  SolveResult result;
  result.node_voltage.assign(static_cast<std::size_t>(n_cells), 0.0);
  for (int i = 0; i < n_cells; ++i) {
    if (fixed[static_cast<std::size_t>(i)].has_value()) {
      result.node_voltage[static_cast<std::size_t>(i)] = *fixed[static_cast<std::size_t>(i)];
    } else if (warm_start != nullptr &&
               warm_start->size() == static_cast<std::size_t>(n_cells)) {
      result.node_voltage[static_cast<std::size_t>(i)] = (*warm_start)[static_cast<std::size_t>(i)];
    }
  }
  auto& v_of = result.node_voltage;
  const auto conductor_v = [&](int cell) { return v_of[static_cast<std::size_t>(cell)]; };

  linalg::Vector u(gated_cells.size(), 0.0);
  for (std::size_t k = 0; k < gated_cells.size(); ++k) {
    u[k] = phi.forward(v_of[static_cast<std::size_t>(gated_cells[k])]);
  }

  // --- Block iteration ----------------------------------------------------
  const bool use_lu = options.backend == LinearBackend::kSparseLu;

  // (a-setup) The u-space Laplace matrix is CONSTANT across block passes:
  // unit edge conductances (a square-cell drift edge carries exactly
  // u_a - u_b) plus the tiny regularizing diagonal. Only the RHS — the
  // conductor boundary terms — moves with the iteration, so assemble once
  // here and, on the direct backend, factor once for the whole solve.
  linalg::SparseMatrix u_matrix;
  linalg::SparseLu u_lu;
  if (!gated_cells.empty()) {
    linalg::TripletList trip(gated_cells.size(), gated_cells.size());
    for (const Edge& e : edges) {
      const int ga = gated_index[static_cast<std::size_t>(e.a)];
      const int gb = gated_index[static_cast<std::size_t>(e.b)];
      if (ga >= 0 && gb >= 0) {
        trip.add(static_cast<std::size_t>(ga), static_cast<std::size_t>(ga), 1.0);
        trip.add(static_cast<std::size_t>(gb), static_cast<std::size_t>(gb), 1.0);
        trip.add(static_cast<std::size_t>(ga), static_cast<std::size_t>(gb), -1.0);
        trip.add(static_cast<std::size_t>(gb), static_cast<std::size_t>(ga), -1.0);
      } else if (ga >= 0 || gb >= 0) {
        // Boundary to conductor material: treat the edge as channel
        // material at the conductor's potential (the conductor's own drop
        // is negligible at the interface). The potential lands in the RHS;
        // the matrix only sees the unit edge conductance.
        const int g = ga >= 0 ? ga : gb;
        trip.add(static_cast<std::size_t>(g), static_cast<std::size_t>(g), 1.0);
      }
    }
    for (std::size_t k = 0; k < gated_cells.size(); ++k) trip.add(k, k, 1e-18);
    u_matrix = linalg::SparseMatrix(trip);
    if (use_lu) u_lu.factor(u_matrix);
  }

  linalg::SparseLu v_lu;
  linalg::Vector u_warm = u;
  linalg::Vector v_warm;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    result.nonlinear_iterations = pass + 1;

    // (a) u-space Laplace over the gated cells: refresh the boundary RHS
    // and back-substitute against the factorization hoisted above.
    if (!gated_cells.empty()) {
      linalg::Vector rhs(gated_cells.size(), 0.0);
      for (const Edge& e : edges) {
        const int ga = gated_index[static_cast<std::size_t>(e.a)];
        const int gb = gated_index[static_cast<std::size_t>(e.b)];
        if ((ga >= 0) != (gb >= 0)) {
          const int g = ga >= 0 ? ga : gb;
          const int other = ga >= 0 ? e.b : e.a;
          rhs[static_cast<std::size_t>(g)] += phi.forward(conductor_v(other));
        }
      }
      if (use_lu) {
        u_lu.solve(rhs, u);
      } else {
        const linalg::CgResult cg = linalg::conjugate_gradient(u_matrix, rhs, u_warm);
        u = cg.x;
      }
      u_warm = u;
    }

    // (b) V-space ohmic solve over non-Dirichlet conductor cells. Channel
    // interfaces are linearized around the current conductor potential:
    //   I = Phi(V_c) - u_g  ≈  sigma(V_c0) (V_c - V_c0) + Phi(V_c0) - u_g.
    double max_change = 0.0;
    if (!cond_cells.empty()) {
      linalg::TripletList trip(cond_cells.size(), cond_cells.size());
      linalg::Vector rhs(cond_cells.size(), 0.0);
      for (const Edge& e : edges) {
        const int ca = cond_index[static_cast<std::size_t>(e.a)];
        const int cb = cond_index[static_cast<std::size_t>(e.b)];
        const bool a_cond = region(e.a) == Region::kConductor;
        const bool b_cond = region(e.b) == Region::kConductor;
        if (a_cond && b_cond) {
          if (ca >= 0) {
            trip.add(static_cast<std::size_t>(ca), static_cast<std::size_t>(ca), sigma_el);
            if (cb >= 0) trip.add(static_cast<std::size_t>(ca), static_cast<std::size_t>(cb), -sigma_el);
            else rhs[static_cast<std::size_t>(ca)] += sigma_el * conductor_v(e.b);
          }
          if (cb >= 0) {
            trip.add(static_cast<std::size_t>(cb), static_cast<std::size_t>(cb), sigma_el);
            if (ca >= 0) trip.add(static_cast<std::size_t>(cb), static_cast<std::size_t>(ca), -sigma_el);
            else rhs[static_cast<std::size_t>(cb)] += sigma_el * conductor_v(e.a);
          }
        } else if (a_cond || b_cond) {
          const int c = a_cond ? ca : cb;
          if (c < 0) continue;  // Dirichlet conductor cell: nothing to solve
          const int cond_cell = a_cond ? e.a : e.b;
          const int gated_cell = a_cond ? e.b : e.a;
          const double v0 = conductor_v(cond_cell);
          const double sig = std::max(phi.sigma(v0), 1e-18);
          const double i0 = phi.forward(v0) -
                            u[static_cast<std::size_t>(gated_index[static_cast<std::size_t>(gated_cell)])];
          // Current out of the conductor cell: i0 + sig (V - v0).
          trip.add(static_cast<std::size_t>(c), static_cast<std::size_t>(c), sig);
          rhs[static_cast<std::size_t>(c)] += sig * v0 - i0;
        }
      }
      for (std::size_t k = 0; k < cond_cells.size(); ++k) trip.add(k, k, 1e-18);
      // kKeep freezes the pattern as a function of mesh structure alone, so
      // every pass produces the same pattern and the numeric-only refactor
      // below stays valid even if an interface conductance cancels.
      const linalg::SparseMatrix a(trip, linalg::SparseMatrix::ZeroPolicy::kKeep);
      linalg::Vector v_new;
      if (use_lu) {
        // Same pattern every pass, values move with the linearization
        // point: numeric-only refactorization, full factor as fallback.
        if (!v_lu.factored() || !v_lu.refactor(a)) v_lu.factor(a);
        v_new = v_lu.solve(rhs);
      } else {
        if (v_warm.size() != cond_cells.size()) {
          v_warm.assign(cond_cells.size(), 0.0);
          for (std::size_t k = 0; k < cond_cells.size(); ++k) {
            v_warm[k] = conductor_v(cond_cells[k]);
          }
        }
        const linalg::CgResult cg = linalg::conjugate_gradient(a, rhs, v_warm);
        v_new = cg.x;
        v_warm = v_new;
      }
      for (std::size_t k = 0; k < cond_cells.size(); ++k) {
        const std::size_t cell = static_cast<std::size_t>(cond_cells[k]);
        max_change = std::max(max_change, std::fabs(v_new[k] - v_of[cell]));
        v_of[cell] = v_new[k];
      }
    }

    // Track channel-V movement as well so single-region devices converge on
    // a meaningful criterion.
    for (std::size_t k = 0; k < gated_cells.size(); ++k) {
      const std::size_t cell = static_cast<std::size_t>(gated_cells[k]);
      const double v_new = phi.inverse(u[k]);
      max_change = std::max(max_change, std::fabs(v_new - v_of[cell]));
      v_of[cell] = v_new;
    }

    if (max_change < options.voltage_tol) {
      result.converged = true;
      break;
    }
  }

  // --- Currents ------------------------------------------------------------
  const auto edge_current = [&](const Edge& e) {
    const bool a_gated = region(e.a) == Region::kGated;
    const bool b_gated = region(e.b) == Region::kGated;
    const auto u_at = [&](int cell) {
      const int g = gated_index[static_cast<std::size_t>(cell)];
      return g >= 0 ? u[static_cast<std::size_t>(g)]
                    : phi.forward(v_of[static_cast<std::size_t>(cell)]);
    };
    if (a_gated || b_gated) return u_at(e.a) - u_at(e.b);
    return sigma_el * (v_of[static_cast<std::size_t>(e.a)] -
                       v_of[static_cast<std::size_t>(e.b)]);
  };

  result.jx.assign(static_cast<std::size_t>(n_cells), 0.0);
  result.jy.assign(static_cast<std::size_t>(n_cells), 0.0);
  std::vector<int> face_count_x(static_cast<std::size_t>(n_cells), 0);
  std::vector<int> face_count_y(static_cast<std::size_t>(n_cells), 0);
  for (const Edge& e : edges) {
    const double i_ab = edge_current(e);

    // Current-density field: accumulate per-cell face currents (A/m after
    // dividing the sheet current by the face width = pitch).
    auto& comp = e.horizontal ? result.jx : result.jy;
    auto& count = e.horizontal ? face_count_x : face_count_y;
    comp[static_cast<std::size_t>(e.a)] += i_ab;
    comp[static_cast<std::size_t>(e.b)] += i_ab;
    ++count[static_cast<std::size_t>(e.a)];
    ++count[static_cast<std::size_t>(e.b)];

    // Terminal currents: edges leaving a driven terminal's cells.
    const int ta = mesh_.terminal[static_cast<std::size_t>(e.a)];
    const int tb = mesh_.terminal[static_cast<std::size_t>(e.b)];
    const bool a_fixed = fixed[static_cast<std::size_t>(e.a)].has_value();
    const bool b_fixed = fixed[static_cast<std::size_t>(e.b)].has_value();
    if (a_fixed && ta >= 0 && !(b_fixed && tb == ta)) {
      result.terminal_current[static_cast<std::size_t>(ta)] += i_ab;
    }
    if (b_fixed && tb >= 0 && !(a_fixed && ta == tb)) {
      result.terminal_current[static_cast<std::size_t>(tb)] -= i_ab;
    }
  }
  for (int i = 0; i < n_cells; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (face_count_x[ui] > 0) result.jx[ui] /= face_count_x[ui] * mesh_.pitch;
    if (face_count_y[ui] > 0) result.jy[ui] /= face_count_y[ui] * mesh_.pitch;
  }

  // Leakage floor from each driven terminal to the grounded bulk.
  const double g_leak = model_.terminal_leak_conductance();
  for (std::size_t t = 0; t < 4; ++t) {
    if (bias.terminal[t].has_value()) {
      result.terminal_current[t] += g_leak * (*bias.terminal[t]);
    }
  }
  return result;
}

}  // namespace ftl::tcad
