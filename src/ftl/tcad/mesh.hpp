#pragma once
// Structured 2-D mesh over the device footprint. Each cell is classified by
// the region it samples; the network solver puts one voltage unknown per
// conducting cell and one edge conductance per neighbouring pair.

#include <vector>

#include "ftl/tcad/device.hpp"

namespace ftl::tcad {

/// What a mesh cell is made of.
enum class Region {
  kOutside,    ///< non-conducting substrate / field oxide
  kGated,      ///< channel under gate control
  kConductor,  ///< n+ electrode or ungated n+ wire
};

struct DeviceMesh {
  int cells_per_side = 0;
  double pitch = 0.0;  ///< cell edge length, m

  /// Row-major over y (row) then x (col); size = cells_per_side^2.
  std::vector<Region> region;
  /// Terminal owning the cell (0..3), or -1. Only kConductor cells belong
  /// to terminals; interior conductors (e.g. the ungated wire core) have -1.
  std::vector<int> terminal;

  int index(int ix, int iy) const { return iy * cells_per_side + ix; }
  Region region_at(int ix, int iy) const { return region[static_cast<std::size_t>(index(ix, iy))]; }
  int cell_count() const { return cells_per_side * cells_per_side; }
};

/// Meshes `spec` with cells_per_side cells along each axis (>= 8).
DeviceMesh build_mesh(const DeviceSpec& spec, int cells_per_side = 48);

}  // namespace ftl::tcad
