#include "ftl/tcad/device.hpp"

#include "ftl/tcad/calibration.hpp"
#include "ftl/util/error.hpp"

namespace ftl::tcad {

std::string to_string(DeviceShape s) {
  switch (s) {
    case DeviceShape::kSquare: return "square";
    case DeviceShape::kCross: return "cross";
    case DeviceShape::kJunctionless: return "junctionless";
  }
  return "?";
}

DeviceSpec make_device(DeviceShape shape, GateDielectric dielectric) {
  DeviceSpec spec;
  spec.shape = shape;
  spec.dielectric = dielectric;
  switch (shape) {
    case DeviceShape::kSquare:
      spec.footprint = 2400e-9;
      spec.electrode_width = 700e-9;
      // Table II gives 200 nm electrode depth; the access region between the
      // metallurgical electrode and the 1000 nm gate edge is n+ as well, so
      // the conducting electrode region reaches the gate boundary.
      spec.electrode_depth = 700e-9;
      spec.electrode_thickness = 200e-9;
      spec.gate_extent = 1000e-9;  // 1000x1000 nm gate
      spec.oxide_thickness = 30e-9;
      spec.substrate_acceptors = 1e23;  // B, 1e17 cm^-3
      spec.electrode_donors = 1e26;     // P, 1e20 cm^-3
      spec.narrow_width = 1000e-9;
      break;
    case DeviceShape::kCross:
      spec.footprint = 2400e-9;
      spec.electrode_width = 700e-9;
      spec.electrode_depth = 200e-9;
      spec.electrode_thickness = 200e-9;
      spec.gate_extent = 200e-9;  // cross arm width W:200
      spec.oxide_thickness = 30e-9;
      spec.substrate_acceptors = 1e23;
      spec.electrode_donors = 1e26;
      spec.narrow_width = 200e-9;
      break;
    case DeviceShape::kJunctionless:
      spec.footprint = 24e-9;
      spec.electrode_width = 2e-9;
      spec.electrode_depth = 2e-9;
      spec.electrode_thickness = 2e-9;
      spec.gate_extent = 4e-9;  // 4x4 nm all-around gate footprint
      spec.oxide_thickness = 3e-9;
      spec.substrate_acceptors = 0.0;  // SiO2 substrate, no junctions
      spec.electrode_donors = calibration::kJunctionlessDonors;
      spec.channel_thickness = calibration::kJunctionlessThickness;
      spec.narrow_width = 0.0;  // all-around gate: no narrow-width shift
      break;
  }
  return spec;
}

}  // namespace ftl::tcad
