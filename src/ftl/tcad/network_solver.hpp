#pragma once
// Nonlinear resistor-network solver: the numerical engine of the TCAD
// substitute.
//
// The gated channel obeys the drift equation div(sigma(V) grad V) = 0 with
// sigma a fixed function of the local potential once the gate voltage is
// set. Under the Kirchhoff transform u = Phi(V) = integral of sigma, that
// equation is exactly Laplace's equation — linear — so the solver iterates
// two *linear* subproblems to convergence:
//   (a) a u-space Laplace solve over the gated cells (SPD, solved by CG),
//   (b) a V-space ohmic solve over the conductor cells (electrodes and
//       ungated wire), with the channel interface linearized around the
//       previous pass.
// This keeps pinch-off/saturation exact (the transform reproduces the
// level-1 saturation integral) and converges where a conductance-lagged
// Picard iteration on V oscillates.

#include <array>
#include <optional>

#include "ftl/linalg/matrix.hpp"
#include "ftl/tcad/charge_sheet.hpp"
#include "ftl/tcad/mesh.hpp"

namespace ftl::tcad {

/// One bias point: gate voltage plus a Dirichlet voltage per driven
/// terminal. A disengaged optional means the terminal floats.
struct BiasPoint {
  double gate = 0.0;
  std::array<std::optional<double>, 4> terminal;
};

struct SolveResult {
  /// Channel potential per mesh cell (kOutside cells read 0).
  linalg::Vector node_voltage;
  /// Sheet current-density components per cell (A/m); outside cells read 0.
  linalg::Vector jx;
  linalg::Vector jy;
  /// Current entering the device at each terminal, A (positive = into the
  /// terminal from the external source). Floating terminals read 0.
  std::array<double, 4> terminal_current{};
  int nonlinear_iterations = 0;
  bool converged = false;
};

/// Linear-system backend for the two block subproblems. kSparseLu exploits
/// what the block iteration cannot hide from a factorization: the u-block
/// matrix is *constant* across passes (factor once, back-substitute per
/// pass) and the V-block keeps one sparsity pattern while its interface
/// linearization moves (numeric refactor per pass). kCg stays the default
/// because these mesh Laplacians are SPD and warm-started Jacobi-CG beats
/// a natural-order factorization's fill-in at paper mesh sizes (48x48,
/// n ~ 2300); the direct backend exists for differential testing and for
/// meshes/materials that leave CG poorly conditioned.
enum class LinearBackend { kCg, kSparseLu };

struct SolverOptions {
  int max_passes = 200;       ///< block (u, V) iteration budget
  double voltage_tol = 1e-6;  ///< max conductor-V / channel-V update, V
  LinearBackend backend = LinearBackend::kCg;
};

/// Solves bias points on a fixed device mesh.
class NetworkSolver {
 public:
  NetworkSolver(DeviceMesh mesh, ChargeSheetModel model);

  const DeviceMesh& mesh() const { return mesh_; }
  const ChargeSheetModel& model() const { return model_; }

  /// Solves one bias point. `warm_start` (a previous node_voltage vector)
  /// accelerates sweeps. Throws ftl::Error when no terminal is driven.
  SolveResult solve(const BiasPoint& bias,
                    const linalg::Vector* warm_start = nullptr,
                    const SolverOptions& options = {}) const;

 private:
  DeviceMesh mesh_;
  ChargeSheetModel model_;
};

}  // namespace ftl::tcad
