#include "ftl/tcad/mesh.hpp"

#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::tcad {
namespace {

struct Point {
  double x;
  double y;
};

bool in_rect(Point p, double x0, double x1, double y0, double y1) {
  return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
}

/// Terminal rectangle test. T1 north (y small), T2 east, T3 south, T4 west.
int electrode_at(const DeviceSpec& s, Point p) {
  const double c = s.footprint / 2.0;
  const double hw = s.electrode_width / 2.0;
  const double d = s.electrode_depth;
  const double f = s.footprint;
  if (in_rect(p, c - hw, c + hw, 0.0, d)) return kT1North;
  if (in_rect(p, f - d, f, c - hw, c + hw)) return kT2East;
  if (in_rect(p, c - hw, c + hw, f - d, f)) return kT3South;
  if (in_rect(p, 0.0, d, c - hw, c + hw)) return kT4West;
  return -1;
}

/// Union of the two centre strips (the cross arms / the junctionless wire).
bool in_cross_strips(const DeviceSpec& s, Point p, double strip_width) {
  const double c = s.footprint / 2.0;
  const double hw = strip_width / 2.0;
  return std::fabs(p.x - c) <= hw || std::fabs(p.y - c) <= hw;
}

bool in_center_square(const DeviceSpec& s, Point p, double side) {
  const double c = s.footprint / 2.0;
  const double h = side / 2.0;
  return std::fabs(p.x - c) <= h && std::fabs(p.y - c) <= h;
}

}  // namespace

DeviceMesh build_mesh(const DeviceSpec& spec, int cells_per_side) {
  FTL_EXPECTS(cells_per_side >= 8);
  DeviceMesh mesh;
  mesh.cells_per_side = cells_per_side;
  mesh.pitch = spec.footprint / static_cast<double>(cells_per_side);
  mesh.region.assign(static_cast<std::size_t>(mesh.cell_count()), Region::kOutside);
  mesh.terminal.assign(static_cast<std::size_t>(mesh.cell_count()), -1);

  for (int iy = 0; iy < cells_per_side; ++iy) {
    for (int ix = 0; ix < cells_per_side; ++ix) {
      const Point p{(ix + 0.5) * mesh.pitch, (iy + 0.5) * mesh.pitch};
      const std::size_t i = static_cast<std::size_t>(mesh.index(ix, iy));

      switch (spec.shape) {
        case DeviceShape::kSquare: {
          const int t = electrode_at(spec, p);
          if (t >= 0) {
            mesh.region[i] = Region::kConductor;
            mesh.terminal[i] = t;
          } else if (in_center_square(spec, p, spec.gate_extent)) {
            mesh.region[i] = Region::kGated;
          }
          break;
        }
        case DeviceShape::kCross: {
          const int t = electrode_at(spec, p);
          if (t >= 0) {
            mesh.region[i] = Region::kConductor;
            mesh.terminal[i] = t;
          } else if (in_cross_strips(spec, p, spec.gate_extent)) {
            mesh.region[i] = Region::kGated;
          }
          break;
        }
        case DeviceShape::kJunctionless: {
          if (!in_cross_strips(spec, p, spec.channel_thickness)) break;
          if (in_center_square(spec, p, spec.gate_extent)) {
            mesh.region[i] = Region::kGated;
            break;
          }
          mesh.region[i] = Region::kConductor;
          // Wire ends within electrode_depth of an edge are the contacts.
          const double f = spec.footprint;
          const double d = spec.electrode_depth;
          if (p.y <= d) mesh.terminal[i] = kT1North;
          else if (p.x >= f - d) mesh.terminal[i] = kT2East;
          else if (p.y >= f - d) mesh.terminal[i] = kT3South;
          else if (p.x <= d) mesh.terminal[i] = kT4West;
          break;
        }
      }
    }
  }
  return mesh;
}

}  // namespace ftl::tcad
