#pragma once
// The three four-terminal device candidates of §III-A / Table II: the
// enhancement-type square- and cross-shaped-gate devices and the
// depletion-type junctionless device. Geometry is the 2-D footprint the
// charge-sheet solver meshes; the vertical dimension enters through oxide
// thickness, electrode thickness and (for the junctionless wire) channel
// thickness.

#include <array>
#include <string>

#include "ftl/tcad/materials.hpp"

namespace ftl::tcad {

enum class DeviceShape { kSquare, kCross, kJunctionless };

std::string to_string(DeviceShape s);

/// The four terminals have fixed locations (§III-B): T1 north, T2 east,
/// T3 south, T4 west. DSFF is then an adjacent pair (T1-T2) and SFDF an
/// opposite pair (T1-T3), matching the paper's 1-drain/1-source cases.
enum Terminal : int { kT1North = 0, kT2East = 1, kT3South = 2, kT4West = 3 };

inline constexpr std::array<const char*, 4> kTerminalNames = {"T1", "T2", "T3", "T4"};

/// Structural description of one device (Table II), SI units.
struct DeviceSpec {
  DeviceShape shape = DeviceShape::kSquare;
  GateDielectric dielectric = GateDielectric::kHfO2;

  double footprint = 0.0;        ///< side of the square active area, m
  double electrode_width = 0.0;  ///< electrode extent along its edge, m
  double electrode_depth = 0.0;  ///< electrode reach toward the centre, m
  double electrode_thickness = 0.0;  ///< vertical thickness, m
  double gate_extent = 0.0;      ///< square: gate side; cross: arm width, m
  double oxide_thickness = 0.0;  ///< m

  double substrate_acceptors = 0.0;  ///< boron, m^-3 (enhancement devices)
  double electrode_donors = 0.0;     ///< phosphorus, m^-3
  double channel_thickness = 0.0;    ///< junctionless wire thickness, m

  /// Characteristic gate width entering the narrow-width Vth shift.
  double narrow_width = 0.0;

  bool is_depletion() const { return shape == DeviceShape::kJunctionless; }

  /// Nominal electrode/substrate junction area (leakage floor), m^2.
  double electrode_junction_area() const {
    return electrode_width * electrode_depth;
  }
};

/// Builds the Table II description for a shape/dielectric combination.
DeviceSpec make_device(DeviceShape shape, GateDielectric dielectric);

}  // namespace ftl::tcad
