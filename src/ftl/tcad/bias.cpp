#include "ftl/tcad/bias.hpp"

#include "ftl/util/error.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::tcad {

BiasPoint BiasCase::at(double vgs, double vds) const {
  BiasPoint p;
  p.gate = vgs;
  for (std::size_t t = 0; t < 4; ++t) {
    switch (roles[t]) {
      case Role::kDrain: p.terminal[t] = vds; break;
      case Role::kSource: p.terminal[t] = 0.0; break;
      case Role::kFloat: break;
    }
  }
  return p;
}

int BiasCase::drain_count() const {
  int n = 0;
  for (Role r : roles) n += (r == Role::kDrain) ? 1 : 0;
  return n;
}

int BiasCase::source_count() const {
  int n = 0;
  for (Role r : roles) n += (r == Role::kSource) ? 1 : 0;
  return n;
}

BiasCase parse_bias_case(const std::string& name) {
  if (name.size() != 4) throw ftl::Error("bias case must have 4 letters: " + name);
  BiasCase c;
  c.name = name;
  for (std::size_t i = 0; i < 4; ++i) {
    switch (name[i]) {
      case 'D': case 'd': c.roles[i] = Role::kDrain; break;
      case 'S': case 's': c.roles[i] = Role::kSource; break;
      case 'F': case 'f': c.roles[i] = Role::kFloat; break;
      default:
        throw ftl::Error("bias case letter must be D, S or F: " + name);
    }
  }
  return c;
}

const std::vector<BiasCase>& paper_bias_cases() {
  static const std::vector<BiasCase> cases = [] {
    const char* names[] = {
        // 1 drain - 1 source (adjacent and opposite pairs)
        "DSFF", "SFDF",
        // 1 drain - 3 sources
        "DSSS", "SDSS", "SSDS", "SSSD",
        // 2 drains - 2 sources
        "DDSS", "SDDS", "DSDS", "DSSD", "SDSD", "SSDD",
        // 3 drains - 1 source
        "DDDS", "SDDD", "DDSD", "DSDD",
    };
    std::vector<BiasCase> out;
    for (const char* n : names) out.push_back(parse_bias_case(n));
    return out;
  }();
  return cases;
}

void for_each_paper_bias_case(
    const std::function<void(std::size_t, const BiasCase&)>& fn,
    std::size_t max_threads) {
  const std::vector<BiasCase>& cases = paper_bias_cases();
  util::parallel_for(
      cases.size(), [&](std::size_t i) { fn(i, cases[i]); }, max_threads);
}

}  // namespace ftl::tcad
