#include "ftl/tcad/sweep.hpp"

#include <cmath>

#include "ftl/util/error.hpp"
#include "ftl/util/thread_pool.hpp"

namespace ftl::tcad {

linalg::Vector IvCurve::terminal_magnitude(int terminal) const {
  FTL_EXPECTS(terminal >= 0 && terminal < 4);
  linalg::Vector out(terminal_currents.size());
  for (std::size_t i = 0; i < terminal_currents.size(); ++i) {
    out[i] = std::fabs(terminal_currents[i][static_cast<std::size_t>(terminal)]);
  }
  return out;
}

linalg::Vector IvCurve::drain_current(const BiasCase& bias) const {
  linalg::Vector out(terminal_currents.size(), 0.0);
  for (std::size_t i = 0; i < terminal_currents.size(); ++i) {
    for (std::size_t t = 0; t < 4; ++t) {
      if (bias.roles[t] == Role::kDrain) out[i] += terminal_currents[i][t];
    }
  }
  return out;
}

IvCurve sweep_gate(const NetworkSolver& solver, const BiasCase& bias,
                   double vds, double vg_first, double vg_last, int points) {
  FTL_EXPECTS(points >= 2);
  IvCurve curve;
  curve.label = bias.name + " Id-Vg @ Vds=" + std::to_string(vds);
  curve.sweep_variable = "Vgs";
  curve.sweep_values = linalg::linspace(vg_first, vg_last, static_cast<std::size_t>(points));
  linalg::Vector warm;
  for (double vg : curve.sweep_values) {
    BiasPoint p = bias.at(vg, vds);
    const SolveResult r = solver.solve(p, warm.empty() ? nullptr : &warm);
    warm = r.node_voltage;
    curve.terminal_currents.push_back(r.terminal_current);
    curve.solver_passes += r.nonlinear_iterations;
  }
  return curve;
}

IvCurve sweep_drain(const NetworkSolver& solver, const BiasCase& bias,
                    double vgs, double vd_first, double vd_last, int points) {
  FTL_EXPECTS(points >= 2);
  IvCurve curve;
  curve.label = bias.name + " Id-Vd @ Vgs=" + std::to_string(vgs);
  curve.sweep_variable = "Vds";
  curve.sweep_values = linalg::linspace(vd_first, vd_last, static_cast<std::size_t>(points));
  linalg::Vector warm;
  for (double vd : curve.sweep_values) {
    BiasPoint p = bias.at(vgs, vd);
    const SolveResult r = solver.solve(p, warm.empty() ? nullptr : &warm);
    warm = r.node_voltage;
    curve.terminal_currents.push_back(r.terminal_current);
    curve.solver_passes += r.nonlinear_iterations;
  }
  return curve;
}

SweepSetups run_paper_setups(const NetworkSolver& solver, const BiasCase& bias,
                             double vg_min, double vg_max, int points) {
  // The three set-ups are independent solves over the same (const, hence
  // shareable) solver, so they fan out as whole sweeps. The warm-start
  // continuation chain lives INSIDE each sweep — points within one sweep
  // stay sequential, which is what makes the chain worth having.
  SweepSetups s;
  util::parallel_for(3, [&](std::size_t i) {
    switch (i) {
      case 0: s.idvg_low = sweep_gate(solver, bias, 0.010, vg_min, vg_max, points); break;
      case 1: s.idvg_high = sweep_gate(solver, bias, 5.0, vg_min, vg_max, points); break;
      case 2: s.idvd = sweep_drain(solver, bias, 5.0, 0.0, 5.0, points); break;
    }
  });
  return s;
}

}  // namespace ftl::tcad
