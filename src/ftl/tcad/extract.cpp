#include "ftl/tcad/extract.hpp"

#include <cmath>

#include "ftl/linalg/interp.hpp"
#include "ftl/util/error.hpp"

namespace ftl::tcad {

double threshold_voltage_max_gm(const linalg::Vector& vgs,
                                const linalg::Vector& id, double vds) {
  FTL_EXPECTS(vgs.size() == id.size() && vgs.size() >= 3);
  // Central-difference transconductance; peak location.
  double best_gm = -1.0;
  std::size_t best = 1;
  for (std::size_t i = 1; i + 1 < vgs.size(); ++i) {
    const double gm = (id[i + 1] - id[i - 1]) / (vgs[i + 1] - vgs[i - 1]);
    if (gm > best_gm) {
      best_gm = gm;
      best = i;
    }
  }
  if (best_gm <= 0.0) throw ftl::Error("threshold extraction: non-increasing Id-Vg curve");
  // Tangent at the peak crosses Id = 0 at Vg - Id/gm; subtract the linear-
  // region half-drain correction.
  return vgs[best] - id[best] / best_gm - vds / 2.0;
}

double on_off_ratio(const linalg::Vector& vgs, const linalg::Vector& id,
                    double vg_on, double vg_off) {
  FTL_EXPECTS(vgs.size() == id.size() && !vgs.empty());
  const double ion = std::fabs(linalg::interp1(vgs, id, vg_on));
  const double ioff = std::fabs(linalg::interp1(vgs, id, vg_off));
  FTL_EXPECTS(ioff > 0.0);
  return ion / ioff;
}

double coefficient_of_variation(const linalg::Vector& values) {
  FTL_EXPECTS(!values.empty());
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  return std::sqrt(var) / std::fabs(mean);
}

}  // namespace ftl::tcad
