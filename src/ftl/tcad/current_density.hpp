#pragma once
// Current-density vector field over the device plane — the quantitative
// stand-in for the paper's Fig. 8 vector profiles. Besides the raw field
// (exportable to CSV), a crowding metric summarizes how uniformly current
// spreads, which is the property Fig. 8 is cited for (cross gate: uniform;
// square gate: corner crowding).

#include <vector>

#include "ftl/tcad/network_solver.hpp"

namespace ftl::tcad {

/// Cell-centred current-density vector (A/m, sheet current density).
struct FieldSample {
  double x = 0.0;  ///< cell centre, m
  double y = 0.0;
  double jx = 0.0;
  double jy = 0.0;
  double magnitude() const;
};

/// Current-density field of a solved bias point.
std::vector<FieldSample> current_density_field(const NetworkSolver& solver,
                                               const BiasPoint& bias);

struct CrowdingMetrics {
  double peak_over_mean = 0.0;  ///< max |J| / mean |J| over conducting cells
  double gini = 0.0;            ///< 0 = perfectly uniform, 1 = concentrated
};

/// Crowding statistics over the gated-channel portion of the field.
CrowdingMetrics crowding_metrics(const NetworkSolver& solver,
                                 const BiasPoint& bias);

}  // namespace ftl::tcad
