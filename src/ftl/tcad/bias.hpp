#pragma once
// The 16 terminal-role cases of §III-B. Each terminal is a drain (driven at
// the sweep voltage), a source (driven at 0 V), or floating. The paper's
// shorthand "DSSS" reads left-to-right over T1..T4.

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "ftl/tcad/network_solver.hpp"

namespace ftl::tcad {

enum class Role { kDrain, kSource, kFloat };

/// One named terminal-role configuration, e.g. "DSSS".
struct BiasCase {
  std::string name;
  std::array<Role, 4> roles;

  /// Materializes a bias point with all drains at `vd`, sources at 0.
  BiasPoint at(double vgs, double vds) const;

  int drain_count() const;
  int source_count() const;
};

/// Parses "DSFF"-style shorthand. Throws ftl::Error on malformed input.
BiasCase parse_bias_case(const std::string& name);

/// The paper's 16 cases: 1D-1S (DSFF, SFDF), 1D-3S, 2D-2S, 3D-1S.
const std::vector<BiasCase>& paper_bias_cases();

/// Applies `fn(case_index, bias_case)` to all 16 paper cases, fanning the
/// independent cases across the thread pool. `fn` must only write state
/// owned by its case index (e.g. a result slot in a pre-sized vector).
/// `max_threads` = 0 uses the hardware concurrency; 1 runs serially.
void for_each_paper_bias_case(
    const std::function<void(std::size_t, const BiasCase&)>& fn,
    std::size_t max_threads = 0);

}  // namespace ftl::tcad
