#pragma once
// Physical constants and the material systems of Table II: silicon substrate
// and electrodes, SiO2 and HfO2 gate dielectrics, boron and phosphorus
// doping. SI units throughout (doping in m^-3).

#include <string>

namespace ftl::tcad {

/// Physical constants (300 K).
namespace constants {
inline constexpr double kElementaryCharge = 1.602176634e-19;  // C
inline constexpr double kVacuumPermittivity = 8.8541878128e-12;  // F/m
inline constexpr double kThermalVoltage = 0.025852;  // kT/q at 300 K, V
inline constexpr double kSiliconIntrinsic = 1.5e16;  // ni, m^-3 at 300 K
inline constexpr double kSiliconPermittivity = 11.7;
}  // namespace constants

/// Gate dielectric choice from the paper (§III-A).
enum class GateDielectric { kSiO2, kHfO2 };

/// Relative permittivity of the dielectric.
double dielectric_constant(GateDielectric d);

std::string to_string(GateDielectric d);

/// Bulk silicon transport/doping description for a region.
struct SiliconRegion {
  double donor_density = 0.0;     // m^-3 (phosphorus)
  double acceptor_density = 0.0;  // m^-3 (boron)
  double electron_mobility = 0.0; // m^2/(V s)
};

/// Fermi potential of a p-type region: phiF = Vt ln(Na / ni).
double fermi_potential(double acceptor_density);

/// Maximum depletion width at threshold: xd = sqrt(4 epsSi phiF / (q Na)).
double max_depletion_width(double acceptor_density);

/// Bulk depletion charge per area at threshold: sqrt(2 q epsSi Na · 2phiF).
double depletion_charge(double acceptor_density);

/// Oxide capacitance per area for thickness `tox`.
double oxide_capacitance(GateDielectric d, double tox);

}  // namespace ftl::tcad
