#pragma once
// The paper's three simulation set-ups (§III-B), producing per-terminal I-V
// curves:
//   1. IDS-VGS at VDS = 10 mV      2. IDS-VGS at VDS = 5 V
//   3. IDS-VDS at VGS = 5 V
// Sources are always at 0 V.

#include <array>
#include <string>
#include <vector>

#include "ftl/tcad/bias.hpp"
#include "ftl/tcad/network_solver.hpp"

namespace ftl::tcad {

/// One recorded sweep: per-point sweep value and all terminal currents.
struct IvCurve {
  std::string label;
  std::string sweep_variable;  ///< "Vgs" or "Vds"
  linalg::Vector sweep_values;
  std::vector<std::array<double, 4>> terminal_currents;
  /// Total nonlinear block-iteration passes spent across the sweep — the
  /// solver-cost counter the jobs telemetry surfaces per TCAD job.
  int solver_passes = 0;

  /// |I| of one terminal along the sweep.
  linalg::Vector terminal_magnitude(int terminal) const;

  /// Total drain current (sum of currents at drain-role terminals).
  linalg::Vector drain_current(const BiasCase& bias) const;
};

struct SweepSetups {
  IvCurve idvg_low;   ///< IDS-VGS, VDS = 10 mV
  IvCurve idvg_high;  ///< IDS-VGS, VDS = 5 V
  IvCurve idvd;       ///< IDS-VDS, VGS = 5 V
};

/// Runs a gate sweep at fixed Vds.
IvCurve sweep_gate(const NetworkSolver& solver, const BiasCase& bias,
                   double vds, double vg_first, double vg_last, int points);

/// Runs a drain sweep at fixed Vgs.
IvCurve sweep_drain(const NetworkSolver& solver, const BiasCase& bias,
                    double vgs, double vd_first, double vd_last, int points);

/// All three paper set-ups for one device/bias case. `vg_min` extends the
/// gate sweeps below 0 V (needed to turn the depletion device off).
SweepSetups run_paper_setups(const NetworkSolver& solver, const BiasCase& bias,
                             double vg_min = 0.0, double vg_max = 5.0,
                             int points = 26);

}  // namespace ftl::tcad
