#include "ftl/tcad/current_density.hpp"

#include <algorithm>
#include <cmath>

#include "ftl/util/error.hpp"

namespace ftl::tcad {

double FieldSample::magnitude() const { return std::hypot(jx, jy); }

std::vector<FieldSample> current_density_field(const NetworkSolver& solver,
                                               const BiasPoint& bias) {
  const SolveResult sol = solver.solve(bias);
  const DeviceMesh& mesh = solver.mesh();
  const int n = mesh.cells_per_side;

  std::vector<FieldSample> field;
  field.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int iy = 0; iy < n; ++iy) {
    for (int ix = 0; ix < n; ++ix) {
      const std::size_t i = static_cast<std::size_t>(mesh.index(ix, iy));
      if (mesh.region[i] == Region::kOutside) continue;
      FieldSample s;
      s.x = (ix + 0.5) * mesh.pitch;
      s.y = (iy + 0.5) * mesh.pitch;
      // The solver already accumulates the sheet current density from the
      // converged edge currents (saturation-exact in u-space).
      s.jx = sol.jx[i];
      s.jy = sol.jy[i];
      field.push_back(s);
    }
  }
  return field;
}

CrowdingMetrics crowding_metrics(const NetworkSolver& solver,
                                 const BiasPoint& bias) {
  const std::vector<FieldSample> field = current_density_field(solver, bias);
  const DeviceMesh& mesh = solver.mesh();

  // Collect |J| over gated cells only — the channel where crowding matters.
  std::vector<double> mags;
  std::size_t k = 0;
  for (int iy = 0; iy < mesh.cells_per_side; ++iy) {
    for (int ix = 0; ix < mesh.cells_per_side; ++ix) {
      const std::size_t i = static_cast<std::size_t>(mesh.index(ix, iy));
      if (mesh.region[i] == Region::kOutside) continue;
      const FieldSample& s = field[k++];
      if (mesh.region[i] == Region::kGated) mags.push_back(s.magnitude());
    }
  }
  FTL_EXPECTS(!mags.empty());

  CrowdingMetrics m;
  double mean = 0.0;
  double peak = 0.0;
  for (double v : mags) {
    mean += v;
    peak = std::max(peak, v);
  }
  mean /= static_cast<double>(mags.size());
  m.peak_over_mean = mean > 0.0 ? peak / mean : 0.0;

  // Gini coefficient of the |J| distribution.
  std::sort(mags.begin(), mags.end());
  const double n = static_cast<double>(mags.size());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < mags.size(); ++i) {
    weighted += (static_cast<double>(i) + 1.0) * mags[i];
    total += mags[i];
  }
  m.gini = total > 0.0 ? (2.0 * weighted / (n * total)) - (n + 1.0) / n : 0.0;
  return m;
}

}  // namespace ftl::tcad
