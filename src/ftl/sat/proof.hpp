#pragma once
// DRAT proof logging and checking for the embedded CDCL solver.
//
// Every UNSAT verdict the solver hands out can be backed by a clausal
// proof: the sequence of input clauses it was given plus every clause it
// learned (each of which is a reverse-unit-propagation consequence of the
// clauses before it) and every learnt clause it later deleted. DratChecker
// replays that log with its own watched-literal propagation — a few hundred
// lines that share no search code with the solver — so a "proof checked"
// verdict does not depend on the ~1.5k-line CDCL core being correct.
//
// The trusted-core boundary: the checker trusts only (a) the recorded input
// clauses and (b) its own unit propagation. Derived clauses are verified
// backward from the final clause with lazy marking (drat-trim style): only
// clauses that actually feed the final conflict are RUP-checked, and the
// marked input clauses double as an UNSAT core over the inputs.
//
// Proof sinks are pluggable: MemoryProof keeps the log in-process for
// immediate checking; FileProofSink streams standard DRAT text ("d " for
// deletions, literals in DIMACS signed form) for external checkers.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ftl/sat/solver.hpp"

namespace ftl::sat {

enum class ProofStep : std::uint8_t {
  kInput,   ///< axiom: a clause handed to the solver (post-canonicalization)
  kDerive,  ///< a clause the solver claims follows by RUP from what precedes
  kDelete,  ///< a previously added clause leaves the active set
};

struct ProofRecord {
  ProofStep step = ProofStep::kInput;
  std::vector<Lit> lits;
};

/// Receives proof events from the solver in derivation order. Implementations
/// must not call back into the emitting solver.
class ProofSink {
 public:
  virtual ~ProofSink() = default;
  virtual void on_input(const std::vector<Lit>& lits) = 0;
  virtual void on_derive(const std::vector<Lit>& lits) = 0;
  virtual void on_delete(const std::vector<Lit>& lits) = 0;
};

/// In-memory proof log, the input format of DratChecker.
class MemoryProof : public ProofSink {
 public:
  void on_input(const std::vector<Lit>& lits) override;
  void on_derive(const std::vector<Lit>& lits) override;
  void on_delete(const std::vector<Lit>& lits) override;

  const std::vector<ProofRecord>& records() const { return records_; }
  std::vector<ProofRecord>& mutable_records() { return records_; }

  std::size_t inputs() const { return inputs_; }
  std::size_t derives() const { return derives_; }
  std::size_t deletes() const { return deletes_; }

 private:
  std::vector<ProofRecord> records_;
  std::size_t inputs_ = 0;
  std::size_t derives_ = 0;
  std::size_t deletes_ = 0;
};

/// Streams DRAT text. Derivations are plain DIMACS lines ("1 -3 0"),
/// deletions are prefixed "d". Input clauses are written as "c i ..."
/// comment lines so one file carries the whole checkable unit (standard
/// DRAT tools ignore comments; parse_drat_file reads them back).
class FileProofSink : public ProofSink {
 public:
  /// Opens `path` for writing; throws ftl::Error when that fails.
  explicit FileProofSink(const std::string& path);
  ~FileProofSink() override;

  FileProofSink(const FileProofSink&) = delete;
  FileProofSink& operator=(const FileProofSink&) = delete;

  void on_input(const std::vector<Lit>& lits) override;
  void on_derive(const std::vector<Lit>& lits) override;
  void on_delete(const std::vector<Lit>& lits) override;

  /// Flushes and closes; subsequent events are an error. Called by the
  /// destructor when not already closed.
  void close();

 private:
  void write_clause(const char* prefix, const std::vector<Lit>& lits);

  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Reads a proof written by FileProofSink back into records. Throws
/// ftl::Error on malformed input — a truncated clause (no terminating 0),
/// a bad token, or trailing garbage all reject rather than silently
/// shortening the proof.
std::vector<ProofRecord> parse_drat_file(const std::string& path);

struct DratCheckResult {
  bool valid = false;
  std::string error;  ///< empty when valid; first failure otherwise

  std::size_t checked = 0;  ///< derived clauses RUP-verified (marked)
  std::size_t skipped = 0;  ///< derived clauses never touched by the proof
  double check_ms = 0.0;    ///< wall-clock of the check

  /// Indices (into the proof's kInput records, in record order) of the
  /// input clauses the verified derivation actually rests on — an UNSAT
  /// core over the inputs, which the lattice audits map back to cells/rows.
  std::vector<std::size_t> core_inputs;
};

/// Backward RUP checker over a recorded proof.
///
/// `final_clause` is the claim being certified: empty = the empty clause
/// (plain UNSAT), otherwise the failed-assumption clause of an
/// assumption-based UNSAT. The last kDerive record must equal it (sorted
/// comparison), every marked derivation must be a reverse-unit-propagation
/// consequence of the records before it, and any structural defect — a
/// deletion naming an absent clause, no derivation at all — rejects.
class DratChecker {
 public:
  DratCheckResult check(const std::vector<ProofRecord>& records,
                        const std::vector<Lit>& final_clause = {});

  DratCheckResult check(const MemoryProof& proof,
                        const std::vector<Lit>& final_clause = {}) {
    return check(proof.records(), final_clause);
  }
};

/// Convenience wrapper: checks the proof of `solver`'s most recent kFalse
/// verdict (the failed-assumption clause when the solve used assumptions,
/// the empty clause otherwise). Requires the solver to have been
/// constructed with SolverOptions::certify.
DratCheckResult check_solver_proof(const Solver& solver);

}  // namespace ftl::sat
