#include "ftl/sat/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "ftl/sat/proof.hpp"
#include "ftl/util/error.hpp"

namespace ftl::sat {
namespace {

// ---------------------------------------------------------------------------
// Process-wide counters (relaxed: individually exact, mutually unordered).

struct AtomicCounters {
  std::atomic<std::uint64_t> solves{0};
  std::atomic<std::uint64_t> sat{0};
  std::atomic<std::uint64_t> unsat{0};
  std::atomic<std::uint64_t> conflicts{0};
  std::atomic<std::uint64_t> decisions{0};
  std::atomic<std::uint64_t> propagations{0};
  std::atomic<std::uint64_t> restarts{0};
  std::atomic<std::uint64_t> learned_clauses{0};
  std::atomic<std::uint64_t> minimized_literals{0};
  std::atomic<std::uint64_t> cegar_rounds{0};
  std::atomic<std::uint64_t> proof_clauses{0};
  std::atomic<std::uint64_t> proof_checks{0};
  std::atomic<std::uint64_t> proof_failures{0};
  std::atomic<std::uint64_t> proof_check_us{0};
};

AtomicCounters& counters() {
  static AtomicCounters instance;
  return instance;
}

/// splitmix64 finalizer — the seed jitter must spread consecutive variable
/// indices across the activity range, and the raw seed+index sum does not.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
double luby(double y, int i) {
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  double out = 1.0;
  for (int k = 0; k < seq; ++k) out *= y;
  return out;
}

}  // namespace

SatCounters sat_counters() {
  AtomicCounters& c = counters();
  SatCounters out;
  out.solves = c.solves.load(std::memory_order_relaxed);
  out.sat = c.sat.load(std::memory_order_relaxed);
  out.unsat = c.unsat.load(std::memory_order_relaxed);
  out.conflicts = c.conflicts.load(std::memory_order_relaxed);
  out.decisions = c.decisions.load(std::memory_order_relaxed);
  out.propagations = c.propagations.load(std::memory_order_relaxed);
  out.restarts = c.restarts.load(std::memory_order_relaxed);
  out.learned_clauses = c.learned_clauses.load(std::memory_order_relaxed);
  out.minimized_literals =
      c.minimized_literals.load(std::memory_order_relaxed);
  out.cegar_rounds = c.cegar_rounds.load(std::memory_order_relaxed);
  out.proof_clauses = c.proof_clauses.load(std::memory_order_relaxed);
  out.proof_checks = c.proof_checks.load(std::memory_order_relaxed);
  out.proof_failures = c.proof_failures.load(std::memory_order_relaxed);
  out.proof_check_us = c.proof_check_us.load(std::memory_order_relaxed);
  return out;
}

void reset_sat_counters() {
  AtomicCounters& c = counters();
  c.solves.store(0, std::memory_order_relaxed);
  c.sat.store(0, std::memory_order_relaxed);
  c.unsat.store(0, std::memory_order_relaxed);
  c.conflicts.store(0, std::memory_order_relaxed);
  c.decisions.store(0, std::memory_order_relaxed);
  c.propagations.store(0, std::memory_order_relaxed);
  c.restarts.store(0, std::memory_order_relaxed);
  c.learned_clauses.store(0, std::memory_order_relaxed);
  c.minimized_literals.store(0, std::memory_order_relaxed);
  c.cegar_rounds.store(0, std::memory_order_relaxed);
  c.proof_clauses.store(0, std::memory_order_relaxed);
  c.proof_checks.store(0, std::memory_order_relaxed);
  c.proof_failures.store(0, std::memory_order_relaxed);
  c.proof_check_us.store(0, std::memory_order_relaxed);
}

namespace detail {
void count_cegar_round() {
  counters().cegar_rounds.fetch_add(1, std::memory_order_relaxed);
}

void count_proof_check(bool valid, double check_ms) {
  AtomicCounters& c = counters();
  c.proof_checks.fetch_add(1, std::memory_order_relaxed);
  if (!valid) c.proof_failures.fetch_add(1, std::memory_order_relaxed);
  c.proof_check_us.fetch_add(static_cast<std::uint64_t>(check_ms * 1000.0),
                             std::memory_order_relaxed);
}
}  // namespace detail

// ---------------------------------------------------------------------------

struct Solver::Impl {
  struct Clause {
    bool learnt = false;
    double activity = 0.0;
    std::vector<Lit> lits;
  };

  explicit Impl(SolverOptions opts) : options(opts) {
    stats.seed = opts.seed;
    if (opts.certify) memory_proof = std::make_unique<MemoryProof>();
  }

  // -- state ----------------------------------------------------------------

  SolverOptions options;
  SolveStats stats;
  SolveStats flushed;  ///< last stats snapshot pushed to the global counters
  bool ok = true;

  // -- proof logging --------------------------------------------------------

  std::unique_ptr<MemoryProof> memory_proof;  ///< certify's checkable log
  ProofSink* extern_sink = nullptr;           ///< optional mirror (not owned)
  ProofStats proof;
  std::uint64_t flushed_proof_clauses = 0;
  std::unique_ptr<DratCheckResult> last_check;

  bool logging() const {
    return memory_proof != nullptr || extern_sink != nullptr;
  }

  void emit_input(const std::vector<Lit>& lits) {
    ++proof.inputs;
    if (memory_proof) memory_proof->on_input(lits);
    if (extern_sink != nullptr) extern_sink->on_input(lits);
  }

  void emit_derive(const std::vector<Lit>& lits) {
    ++proof.derived;
    if (memory_proof) memory_proof->on_derive(lits);
    if (extern_sink != nullptr) extern_sink->on_derive(lits);
  }

  void emit_delete(const std::vector<Lit>& lits) {
    ++proof.deleted;
    if (memory_proof) memory_proof->on_delete(lits);
    if (extern_sink != nullptr) extern_sink->on_delete(lits);
  }

  /// One watch-list entry: the watching clause plus a "blocker" literal —
  /// some other literal of the clause (initially the clause's other watch,
  /// refreshed on every inspection). When the blocker is already true the
  /// clause is satisfied and propagation skips it without touching the
  /// clause memory at all, which is where most propagation time goes on
  /// long watch lists (MiniSat 2.2's OccLists optimization).
  struct Watcher {
    Clause* clause = nullptr;
    Lit blocker{-2};
  };

  std::vector<std::unique_ptr<Clause>> clauses;  ///< problem clauses
  std::vector<std::unique_ptr<Clause>> learnts;  ///< learnt clauses
  /// watches[lit.code]: clauses that must be inspected when `lit` becomes
  /// true (i.e. clauses currently watching ~lit).
  std::vector<std::vector<Watcher>> watches;

  std::vector<LBool> assigns;     ///< per-var current value
  std::vector<char> polarity;     ///< per-var saved phase (1 = last true)
  std::vector<Clause*> reason;    ///< per-var implying clause (null=decision)
  std::vector<int> level;         ///< per-var decision level
  std::vector<double> activity;   ///< per-var VSIDS activity
  std::vector<char> seen;         ///< analyze() scratch
  std::vector<Lit> analyze_stack;    ///< lit_redundant() DFS worklist
  std::vector<Lit> analyze_toclear;  ///< seen[] marks to undo after analyze

  std::vector<Lit> trail;
  std::vector<int> trail_lim;  ///< trail index at each decision level
  std::size_t qhead = 0;       ///< propagation queue head into trail

  // Indexed max-heap over unassigned variables, ordered by activity with
  // index tie-break (lower index wins) so the search is deterministic.
  std::vector<Var> heap;
  std::vector<int> heap_pos;  ///< per-var position in heap, -1 = absent

  double var_inc = 1.0;
  double clause_inc = 1.0;
  std::size_t max_learnts = 0;

  std::vector<LBool> model;
  std::vector<Lit> conflict;  ///< failed assumptions of the last solve
  Lit constant_true{-2};

  // -- assignment primitives ------------------------------------------------

  LBool value(Var v) const { return assigns[static_cast<std::size_t>(v)]; }

  LBool value(Lit p) const {
    const LBool v = assigns[static_cast<std::size_t>(p.var())];
    if (v == LBool::kUndef) return LBool::kUndef;
    const bool truth = (v == LBool::kTrue) == p.positive();
    return truth ? LBool::kTrue : LBool::kFalse;
  }

  int decision_level() const { return static_cast<int>(trail_lim.size()); }

  void enqueue(Lit p, Clause* from) {
    const auto v = static_cast<std::size_t>(p.var());
    assigns[v] = p.positive() ? LBool::kTrue : LBool::kFalse;
    level[v] = decision_level();
    reason[v] = from;
    trail.push_back(p);
  }

  void cancel_until(int target_level) {
    if (decision_level() <= target_level) return;
    const int bound = trail_lim[static_cast<std::size_t>(target_level)];
    for (int i = static_cast<int>(trail.size()) - 1; i >= bound; --i) {
      const Lit p = trail[static_cast<std::size_t>(i)];
      const auto v = static_cast<std::size_t>(p.var());
      polarity[v] = p.positive() ? 1 : 0;  // phase saving
      assigns[v] = LBool::kUndef;
      reason[v] = nullptr;
      heap_insert(p.var());
    }
    trail.resize(static_cast<std::size_t>(bound));
    trail_lim.resize(static_cast<std::size_t>(target_level));
    qhead = trail.size();
  }

  // -- variable order heap --------------------------------------------------

  bool heap_before(Var a, Var b) const {
    const double aa = activity[static_cast<std::size_t>(a)];
    const double ab = activity[static_cast<std::size_t>(b)];
    return aa > ab || (aa == ab && a < b);
  }

  void heap_percolate_up(std::size_t i) {
    const Var v = heap[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_before(v, heap[parent])) break;
      heap[i] = heap[parent];
      heap_pos[static_cast<std::size_t>(heap[i])] = static_cast<int>(i);
      i = parent;
    }
    heap[i] = v;
    heap_pos[static_cast<std::size_t>(v)] = static_cast<int>(i);
  }

  void heap_percolate_down(std::size_t i) {
    const Var v = heap[i];
    const std::size_t n = heap.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_before(heap[child + 1], heap[child])) ++child;
      if (!heap_before(heap[child], v)) break;
      heap[i] = heap[child];
      heap_pos[static_cast<std::size_t>(heap[i])] = static_cast<int>(i);
      i = child;
    }
    heap[i] = v;
    heap_pos[static_cast<std::size_t>(v)] = static_cast<int>(i);
  }

  void heap_insert(Var v) {
    if (heap_pos[static_cast<std::size_t>(v)] >= 0) return;
    heap.push_back(v);
    heap_percolate_up(heap.size() - 1);
  }

  void heap_update(Var v) {
    const int pos = heap_pos[static_cast<std::size_t>(v)];
    if (pos >= 0) heap_percolate_up(static_cast<std::size_t>(pos));
  }

  Var heap_pop() {
    const Var top = heap[0];
    heap_pos[static_cast<std::size_t>(top)] = -1;
    const Var last = heap.back();
    heap.pop_back();
    if (!heap.empty()) {
      heap[0] = last;
      heap_pos[static_cast<std::size_t>(last)] = 0;
      heap_percolate_down(0);
    }
    return top;
  }

  // -- activity -------------------------------------------------------------

  void bump_var(Var v) {
    double& a = activity[static_cast<std::size_t>(v)];
    a += var_inc;
    if (a > 1e100) {
      for (double& x : activity) x *= 1e-100;
      var_inc *= 1e-100;
    }
    heap_update(v);
  }

  void decay_var_activity() { var_inc /= options.var_decay; }

  void bump_clause(Clause& c) {
    c.activity += clause_inc;
    if (c.activity > 1e20) {
      for (const auto& cl : learnts) cl->activity *= 1e-20;
      clause_inc *= 1e-20;
    }
  }

  void decay_clause_activity() { clause_inc /= options.clause_decay; }

  // -- clause attach/detach -------------------------------------------------

  void attach(Clause* c) {
    // Each watch blocks on the clause's *other* watched literal: if that one
    // is true the clause is satisfied and the visit is free.
    watches[static_cast<std::size_t>((~c->lits[0]).code)].push_back(
        {c, c->lits[1]});
    watches[static_cast<std::size_t>((~c->lits[1]).code)].push_back(
        {c, c->lits[0]});
  }

  void detach(Clause* c) {
    for (const Lit w : {c->lits[0], c->lits[1]}) {
      std::vector<Watcher>& list = watches[static_cast<std::size_t>((~w).code)];
      list.erase(std::find_if(list.begin(), list.end(),
                              [c](const Watcher& x) { return x.clause == c; }));
    }
  }

  /// True when `c` is the reason of its asserting literal and therefore must
  /// not be deleted.
  bool locked(const Clause* c) const {
    return value(c->lits[0]) == LBool::kTrue &&
           reason[static_cast<std::size_t>(c->lits[0].var())] == c;
  }

  // -- propagation ----------------------------------------------------------

  Clause* propagate() {
    Clause* conflict_clause = nullptr;
    while (qhead < trail.size()) {
      const Lit p = trail[qhead++];
      ++stats.propagations;
      std::vector<Watcher>& ws = watches[static_cast<std::size_t>(p.code)];
      std::size_t i = 0;
      std::size_t j = 0;
      const std::size_t end = ws.size();
      while (i != end) {
        const Watcher w = ws[i++];
        // Blocker already true: the clause is satisfied — keep the watch
        // without dereferencing the clause.
        if (value(w.blocker) == LBool::kTrue) {
          ws[j++] = w;
          continue;
        }
        Clause* c = w.clause;
        std::vector<Lit>& lits = c->lits;
        // Normalize: the false watched literal (~p) goes to slot 1.
        const Lit false_lit = ~p;
        if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
        const Lit first = lits[0];
        // Satisfied by the other watch: keep watching, with the satisfied
        // literal as the refreshed blocker (skip when it was the blocker —
        // its value is already known not-true).
        if (first != w.blocker && value(first) == LBool::kTrue) {
          ws[j++] = {c, first};
          continue;
        }
        // Look for a replacement watch among the tail literals.
        bool rewatched = false;
        for (std::size_t k = 2; k < lits.size(); ++k) {
          if (value(lits[k]) != LBool::kFalse) {
            std::swap(lits[1], lits[k]);
            watches[static_cast<std::size_t>((~lits[1]).code)].push_back(
                {c, first});
            rewatched = true;
            break;
          }
        }
        if (rewatched) continue;
        // Unit or conflicting under the current assignment.
        ws[j++] = {c, first};
        if (value(first) == LBool::kFalse) {
          conflict_clause = c;
          qhead = trail.size();
          while (i != end) ws[j++] = ws[i++];  // keep remaining watches
          break;
        }
        enqueue(first, c);
      }
      ws.resize(j);
      if (conflict_clause != nullptr) break;
    }
    return conflict_clause;
  }

  // -- conflict analysis (first UIP) ----------------------------------------

  void analyze(Clause* conflict_clause, std::vector<Lit>& out_learnt,
               int& out_btlevel) {
    out_learnt.clear();
    out_learnt.push_back(Lit{-2});  // slot 0: the asserting literal
    int path_count = 0;
    Lit p{-2};
    int index = static_cast<int>(trail.size()) - 1;
    do {
      Clause& c = *conflict_clause;
      if (c.learnt) bump_clause(c);
      // Skip slot 0 on reason clauses: it holds the resolved pivot itself.
      for (std::size_t k = p.defined() ? 1 : 0; k < c.lits.size(); ++k) {
        const Lit q = c.lits[k];
        const auto v = static_cast<std::size_t>(q.var());
        if (seen[v] == 0 && level[v] > 0) {
          seen[v] = 1;
          bump_var(q.var());
          if (level[v] >= decision_level()) {
            ++path_count;
          } else {
            out_learnt.push_back(q);
          }
        }
      }
      while (seen[static_cast<std::size_t>(
                 trail[static_cast<std::size_t>(index--)].var())] == 0) {
      }
      p = trail[static_cast<std::size_t>(index + 1)];
      conflict_clause = reason[static_cast<std::size_t>(p.var())];
      seen[static_cast<std::size_t>(p.var())] = 0;
      --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Minimize by recursive self-subsumption BEFORE picking the backjump
    // level: dropping a literal can lower the second-highest level in the
    // clause, and slot 1 must hold the surviving watch.
    analyze_toclear.assign(out_learnt.begin(), out_learnt.end());
    if (options.minimize_learnts) {
      std::uint32_t abstract_levels = 0;
      for (std::size_t k = 1; k < out_learnt.size(); ++k) {
        abstract_levels |= abstract_level(out_learnt[k].var());
      }
      std::size_t j = 1;
      for (std::size_t k = 1; k < out_learnt.size(); ++k) {
        const Lit q = out_learnt[k];
        if (reason[static_cast<std::size_t>(q.var())] == nullptr ||
            !lit_redundant(q, abstract_levels)) {
          out_learnt[j++] = q;
        }
      }
      stats.minimized_literals += out_learnt.size() - j;
      out_learnt.resize(j);
    }

    // Backjump to the second-highest decision level in the clause, keeping
    // that literal in slot 1 so it becomes the other watch.
    out_btlevel = 0;
    if (out_learnt.size() > 1) {
      std::size_t max_i = 1;
      for (std::size_t k = 2; k < out_learnt.size(); ++k) {
        if (level[static_cast<std::size_t>(out_learnt[k].var())] >
            level[static_cast<std::size_t>(out_learnt[max_i].var())]) {
          max_i = k;
        }
      }
      std::swap(out_learnt[1], out_learnt[max_i]);
      out_btlevel = level[static_cast<std::size_t>(out_learnt[1].var())];
    }
    // Clear from the pre-minimization snapshot plus lit_redundant's marks —
    // out_learnt alone would leave dropped literals' seen bits set.
    for (const Lit q : analyze_toclear) {
      seen[static_cast<std::size_t>(q.var())] = 0;
    }
  }

  /// One-hot abstraction of a variable's decision level (MiniSat's
  /// abstractLevel): cheap set-membership filter for lit_redundant — a
  /// reason literal whose level bit is outside the learnt clause's level
  /// mask can never resolve away.
  std::uint32_t abstract_level(Var v) const {
    return 1u << (level[static_cast<std::size_t>(v)] & 31);
  }

  /// True when `p` is implied by the rest of the learnt clause: DFS through
  /// reason clauses, succeeding only if every path bottoms out in literals
  /// already in the clause (seen) or at level 0. Redundant intermediates
  /// keep their seen mark as memoization (undone after analyze via
  /// analyze_toclear); on failure all marks added by this call are unwound.
  bool lit_redundant(Lit p, std::uint32_t abstract_levels) {
    analyze_stack.clear();
    analyze_stack.push_back(p);
    const std::size_t top = analyze_toclear.size();
    while (!analyze_stack.empty()) {
      const Lit q = analyze_stack.back();
      analyze_stack.pop_back();
      const Clause& c = *reason[static_cast<std::size_t>(q.var())];
      // Slot 0 of a reason clause is the implied literal itself.
      for (std::size_t k = 1; k < c.lits.size(); ++k) {
        const Lit l = c.lits[k];
        const auto v = static_cast<std::size_t>(l.var());
        if (seen[v] != 0 || level[v] == 0) continue;
        if (reason[v] != nullptr &&
            (abstract_level(l.var()) & abstract_levels) != 0) {
          seen[v] = 1;
          analyze_stack.push_back(l);
          analyze_toclear.push_back(l);
        } else {
          for (std::size_t i = top; i < analyze_toclear.size(); ++i) {
            seen[static_cast<std::size_t>(analyze_toclear[i].var())] = 0;
          }
          analyze_toclear.resize(top);
          return false;
        }
      }
    }
    return true;
  }

  /// Failed-assumption extraction: the conflict set reached from ~p through
  /// reasons, reported as the subset of assumptions that cannot hold jointly.
  /// `p` is the negation of the failed assumption (true in the current
  /// assignment); the emitted set holds negations of conflicting
  /// assumptions, MiniSat's convention.
  void analyze_final(Lit p) {
    conflict.clear();
    conflict.push_back(p);
    if (decision_level() == 0) return;
    seen[static_cast<std::size_t>(p.var())] = 1;
    for (int i = static_cast<int>(trail.size()) - 1;
         i >= trail_lim[0]; --i) {
      const Var x = trail[static_cast<std::size_t>(i)].var();
      const auto xi = static_cast<std::size_t>(x);
      if (seen[xi] == 0) continue;
      if (reason[xi] == nullptr) {
        conflict.push_back(~trail[static_cast<std::size_t>(i)]);
      } else {
        const Clause& c = *reason[xi];
        for (std::size_t k = 1; k < c.lits.size(); ++k) {
          const auto v = static_cast<std::size_t>(c.lits[k].var());
          if (level[v] > 0) seen[v] = 1;
        }
      }
      seen[xi] = 0;
    }
    seen[static_cast<std::size_t>(p.var())] = 0;
  }

  void record_learnt(std::vector<Lit> lits, int btlevel) {
    ++stats.learned_clauses;
    stats.learned_literals += lits.size();
    if (logging()) emit_derive(lits);
    cancel_until(btlevel);
    if (lits.size() == 1) {
      enqueue(lits[0], nullptr);
      return;
    }
    auto clause = std::make_unique<Clause>();
    clause->learnt = true;
    clause->lits = std::move(lits);
    bump_clause(*clause);
    attach(clause.get());
    Clause* raw = clause.get();
    learnts.push_back(std::move(clause));
    enqueue(raw->lits[0], raw);
  }

  /// Drops the lower-activity half of the learnt clauses (locked and binary
  /// clauses are kept). Order ties resolve on insertion order, which is
  /// stable, so reduction is deterministic.
  void reduce_learnts() {
    std::stable_sort(learnts.begin(), learnts.end(),
                     [](const std::unique_ptr<Clause>& a,
                        const std::unique_ptr<Clause>& b) {
                       return a->activity < b->activity;
                     });
    const std::size_t target = learnts.size() / 2;
    std::vector<std::unique_ptr<Clause>> kept;
    kept.reserve(learnts.size() - target);
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < learnts.size(); ++i) {
      Clause* c = learnts[i].get();
      if (dropped < target && c->lits.size() > 2 && !locked(c)) {
        if (logging()) emit_delete(c->lits);
        detach(c);
        ++dropped;
        ++stats.deleted_clauses;
      } else {
        kept.push_back(std::move(learnts[i]));
      }
    }
    learnts = std::move(kept);
  }

  // -- search ---------------------------------------------------------------

  Lit pick_branch_lit() {
    while (!heap.empty()) {
      const Var v = heap_pop();
      if (value(v) == LBool::kUndef) {
        return Lit::of(v, polarity[static_cast<std::size_t>(v)] != 0);
      }
    }
    return Lit{-2};
  }

  /// One restart's worth of search. kTrue/kFalse decide the instance;
  /// kUndef means restart (or budget exhaustion — caller re-checks).
  LBool search(std::int64_t conflict_limit, std::int64_t budget_limit,
               const std::vector<Lit>& assumptions) {
    std::int64_t local_conflicts = 0;
    std::vector<Lit> learnt;
    for (;;) {
      Clause* conflict_clause = propagate();
      if (conflict_clause != nullptr) {
        ++stats.conflicts;
        ++local_conflicts;
        if (decision_level() == 0) {
          if (logging()) emit_derive({});
          ok = false;
          return LBool::kFalse;
        }
        int btlevel = 0;
        analyze(conflict_clause, learnt, btlevel);
        record_learnt(learnt, btlevel);
        decay_var_activity();
        decay_clause_activity();
        continue;
      }
      // No conflict: restart / budget / reduce checks, then a new decision.
      if (local_conflicts >= conflict_limit ||
          (budget_limit >= 0 &&
           static_cast<std::int64_t>(stats.conflicts) >= budget_limit)) {
        cancel_until(0);
        return LBool::kUndef;
      }
      if (max_learnts > 0 && learnts.size() >= max_learnts) {
        reduce_learnts();
        max_learnts += max_learnts / 2;
      }
      Lit next{-2};
      while (decision_level() < static_cast<int>(assumptions.size())) {
        const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::kTrue) {
          trail_lim.push_back(static_cast<int>(trail.size()));
        } else if (value(a) == LBool::kFalse) {
          analyze_final(~a);
          return LBool::kFalse;
        } else {
          next = a;
          break;
        }
      }
      if (!next.defined()) {
        next = pick_branch_lit();
        if (!next.defined()) return LBool::kTrue;  // all variables assigned
        ++stats.decisions;
      }
      trail_lim.push_back(static_cast<int>(trail.size()));
      enqueue(next, nullptr);
    }
  }

  void flush_counters(LBool result) {
    AtomicCounters& c = counters();
    c.solves.fetch_add(1, std::memory_order_relaxed);
    if (result == LBool::kTrue) c.sat.fetch_add(1, std::memory_order_relaxed);
    if (result == LBool::kFalse) c.unsat.fetch_add(1, std::memory_order_relaxed);
    c.conflicts.fetch_add(stats.conflicts - flushed.conflicts,
                          std::memory_order_relaxed);
    c.decisions.fetch_add(stats.decisions - flushed.decisions,
                          std::memory_order_relaxed);
    c.propagations.fetch_add(stats.propagations - flushed.propagations,
                             std::memory_order_relaxed);
    c.restarts.fetch_add(stats.restarts - flushed.restarts,
                         std::memory_order_relaxed);
    c.learned_clauses.fetch_add(stats.learned_clauses - flushed.learned_clauses,
                                std::memory_order_relaxed);
    c.minimized_literals.fetch_add(
        stats.minimized_literals - flushed.minimized_literals,
        std::memory_order_relaxed);
    c.proof_clauses.fetch_add(proof.derived - flushed_proof_clauses,
                              std::memory_order_relaxed);
    flushed_proof_clauses = proof.derived;
    flushed = stats;
  }
};

// ---------------------------------------------------------------------------

Solver::Solver(SolverOptions options) : impl_(new Impl(options)) {}

Solver::~Solver() = default;

Var Solver::new_var() {
  Impl& im = *impl_;
  const Var v = static_cast<Var>(im.assigns.size());
  im.assigns.push_back(LBool::kUndef);
  im.polarity.push_back(0);
  im.reason.push_back(nullptr);
  im.level.push_back(0);
  // Seed-derived jitter (well below one bump) so different seeds explore
  // different orders while staying fully deterministic per seed.
  im.activity.push_back(
      1e-12 * static_cast<double>(mix64(im.options.seed * 0x10001 +
                                        static_cast<std::uint64_t>(v)) &
                                  0xfffffu));
  im.seen.push_back(0);
  im.heap_pos.push_back(-1);
  im.watches.emplace_back();
  im.watches.emplace_back();
  im.heap_insert(v);
  return v;
}

int Solver::num_vars() const {
  return static_cast<int>(impl_->assigns.size());
}

Lit Solver::true_lit() {
  Impl& im = *impl_;
  if (!im.constant_true.defined()) {
    const Lit t = Lit::of(new_var());
    im.constant_true = t;
    add_clause({t});
  }
  return im.constant_true;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  Impl& im = *impl_;
  FTL_EXPECTS(im.decision_level() == 0);
  if (!im.ok) return false;
  for (const Lit p : lits) {
    FTL_EXPECTS(p.defined() && p.var() < num_vars());
  }
  // Canonicalize: sort by code, merge duplicates, detect tautologies, and
  // drop literals already decided at level 0.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  std::vector<Lit> out;
  out.reserve(lits.size());
  for (const Lit p : lits) {
    if (!out.empty() && p == out.back()) continue;
    if (!out.empty() && p == ~out.back()) return true;  // tautology
    if (im.value(p) == LBool::kTrue) return true;       // already satisfied
    if (im.value(p) == LBool::kFalse) continue;         // already falsified
    out.push_back(p);
  }
  // Record the canonicalized clause as a proof input. Every stripped
  // level-0 literal is justified by a previously recorded unit, so the
  // recorded formula is a consequence of the original and UNSAT of the
  // recorded clauses implies UNSAT of what the caller supplied.
  if (im.logging()) im.emit_input(out);
  if (out.empty()) {
    im.ok = false;
    return false;
  }
  if (out.size() == 1) {
    im.enqueue(out[0], nullptr);
    if (im.propagate() != nullptr) {
      if (im.logging()) im.emit_derive({});
      im.ok = false;
      return false;
    }
    return true;
  }
  auto clause = std::make_unique<Impl::Clause>();
  clause->lits = std::move(out);
  im.attach(clause.get());
  im.clauses.push_back(std::move(clause));
  return true;
}

bool Solver::okay() const { return impl_->ok; }

LBool Solver::solve(const std::vector<Lit>& assumptions) {
  Impl& im = *impl_;
  ++im.stats.solves;
  im.model.clear();
  im.conflict.clear();
  if (!im.ok) {
    im.flush_counters(LBool::kFalse);
    if (im.options.certify && im.memory_proof) {
      ++im.proof.checks;
      im.last_check = std::make_unique<DratCheckResult>(
          DratChecker().check(*im.memory_proof));
      if (!im.last_check->valid) ++im.proof.failures;
    }
    return LBool::kFalse;
  }
  if (im.max_learnts == 0) {
    im.max_learnts = std::max<std::size_t>(1000, im.clauses.size() / 3);
  }
  const std::int64_t budget_limit =
      im.options.max_conflicts < 0
          ? -1
          : static_cast<std::int64_t>(im.stats.conflicts) +
                im.options.max_conflicts;
  LBool status = LBool::kUndef;
  for (int restart = 0; status == LBool::kUndef; ++restart) {
    if (restart > 0) ++im.stats.restarts;
    const double units = luby(2.0, restart);
    status = im.search(
        static_cast<std::int64_t>(units * im.options.restart_base),
        budget_limit, assumptions);
    if (status == LBool::kUndef && budget_limit >= 0 &&
        static_cast<std::int64_t>(im.stats.conflicts) >= budget_limit) {
      break;  // budget exhausted: report kUndef, solver stays usable
    }
  }
  if (status == LBool::kTrue) {
    im.model = im.assigns;
  }
  im.cancel_until(0);
  // An assumption-based UNSAT ends the proof with the failed-assumption
  // clause (¬a₁ ∨ … ∨ ¬aₖ); it is RUP at this point because propagating
  // the assumptions alone reaches the recorded conflict. Plain UNSAT paths
  // already emitted the empty clause at the level-0 conflict.
  if (status == LBool::kFalse && !im.conflict.empty() && im.logging()) {
    im.emit_derive(im.conflict);
  }
  im.flush_counters(status);
  if (status == LBool::kFalse && im.options.certify && im.memory_proof) {
    ++im.proof.checks;
    im.last_check = std::make_unique<DratCheckResult>(
        DratChecker().check(*im.memory_proof, im.conflict));
    if (!im.last_check->valid) ++im.proof.failures;
  }
  return status;
}

LBool Solver::model_value(Var v) const {
  const Impl& im = *impl_;
  if (static_cast<std::size_t>(v) >= im.model.size()) return LBool::kUndef;
  return im.model[static_cast<std::size_t>(v)];
}

LBool Solver::model_value(Lit p) const {
  const LBool v = model_value(p.var());
  if (v == LBool::kUndef) return LBool::kUndef;
  const bool truth = (v == LBool::kTrue) == p.positive();
  return truth ? LBool::kTrue : LBool::kFalse;
}

const std::vector<Lit>& Solver::failed_assumptions() const {
  return impl_->conflict;
}

void Solver::set_max_conflicts(std::int64_t budget) {
  impl_->options.max_conflicts = budget;
}

void Solver::set_proof_sink(ProofSink* sink) { impl_->extern_sink = sink; }

const MemoryProof* Solver::proof_log() const {
  return impl_->memory_proof.get();
}

const DratCheckResult* Solver::last_proof_check() const {
  return impl_->last_check.get();
}

const ProofStats& Solver::proof_stats() const { return impl_->proof; }

const SolveStats& Solver::stats() const { return impl_->stats; }

const SolverOptions& Solver::options() const { return impl_->options; }

std::size_t Solver::num_clauses() const { return impl_->clauses.size(); }

std::size_t Solver::num_learnts() const { return impl_->learnts.size(); }

}  // namespace ftl::sat
