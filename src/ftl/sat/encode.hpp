#pragma once
// CNF encodings of four-terminal lattice path-connectivity, and the selector
// encoding of the lattice-realization search (§II of the paper, attacked as
// SAT per ROADMAP and arXiv:2202.09551).
//
// This layer is deliberately abstract — cells are indices, conductivity is a
// literal per cell — so ftl_sat stays free of lattice types (ftl_lattice
// links ftl_sat for synth_sat, not the other way around). The CEGAR driver
// that owns Lattice/TruthTable lives in lattice/sat_synthesis.cpp.
//
// Cell i = r * cols + c (row-major). "Connected" means a 4-neighbor path of
// conducting cells from some top-row cell to some bottom-row cell — the same
// relation lattice/connectivity.hpp computes by BFS and lattice/bitslice.hpp
// by bit-parallel fixpoint; tests check all three agree.

#include <cstdint>
#include <vector>

#include "ftl/sat/solver.hpp"

namespace ftl::sat {

/// Asserts that a top-to-bottom path of conducting cells EXISTS.
/// `on[i]` is the literal "cell i conducts". Encoded through the grid
/// crossing duality: an ON top-bottom 4-connected path exists iff the OFF
/// cells have no left-right 8-connected crossing, and the absence of that
/// crossing is a cheap single-layer forced-closure encoding (one auxiliary
/// variable per cell). Sound and complete; ~9 short clauses per cell.
void encode_path_exists(Solver& solver, int rows, int cols,
                        const std::vector<Lit>& on);

/// Exact layered reachability: returns one literal per cell (row-major)
/// that is true IFF the cell conducts and a 4-connected path of conducting
/// cells links it to the seed boundary (top row when `from_top`, bottom row
/// otherwise). Unlike the forced-closure encodings above — whose auxiliary
/// flags may be over-set in satisfying models — every returned literal is
/// functionally determined by the `on` assignment (iff-defined BFS layers,
/// unrolled to the grid diameter), so both SAT and UNSAT answers of queries
/// over these literals are meaningful. Costs ~2·cells² auxiliary variables;
/// meant for audits on one lattice, not inner synthesis loops.
std::vector<Lit> encode_reach_exact(Solver& solver, int rows, int cols,
                                    const std::vector<Lit>& on, bool from_top);

/// Exact top-to-bottom connectivity: a literal true IFF some conducting
/// path links the top row to the bottom row (iff-defined via
/// encode_reach_exact). Suitable for miter constructions.
Lit encode_connected_exact(Solver& solver, int rows, int cols,
                           const std::vector<Lit>& on);

/// Asserts that NO top-to-bottom path of conducting cells exists.
/// Single-layer forced-closure encoding: clauses force a cell's
/// reachability flag true whenever it conducts and a 4-neighbor (or the top
/// boundary) reaches it, and unit clauses pin the bottom row's flags false.
/// A real path forces a conflict by unit propagation alone; when no path
/// exists, the exact reachable set satisfies every clause.
void encode_path_absent(Solver& solver, int rows, int cols,
                        const std::vector<Lit>& on);

/// Selector encoding of "choose each cell's value so the lattice realizes
/// the target on a set of care minterms".
///
/// Choice indices mirror the candidate ordering of the exhaustive engine
/// (lattice/synthesis.cpp candidate_values): choice 2v = variable v positive
/// literal, 2v+1 = variable v negative literal, then (with constants) index
/// 2*num_vars = constant-1 and 2*num_vars+1 = constant-0. Keeping the two
/// engines' orderings identical is what lets tests compare them cell by
/// cell and lets decoded models feed materialization directly.
class LatticeSynthesisCnf {
 public:
  /// Creates one selector variable per (cell, choice) with exactly-one
  /// constraints per cell. Requires rows, cols >= 1 and num_vars >= 1.
  LatticeSynthesisCnf(Solver& solver, int rows, int cols, int num_vars,
                      bool allow_constants);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_vars() const { return num_vars_; }
  int num_choices() const { return num_choices_; }

  /// The selector literal "cell picks this choice".
  Lit sel(int cell, int choice) const;

  /// Value of a choice under a variable assignment (bit v of `assignment`
  /// is variable v), matching CellValue::evaluate for the mirrored index.
  static bool choice_on(int choice, int num_vars, std::uint64_t assignment);

  /// Constrains the lattice to output `target_value` on `assignment`:
  /// fresh on-literals are defined from the selectors under this minterm
  /// and fed to encode_path_exists / encode_path_absent.
  void add_care_minterm(std::uint64_t assignment, bool target_value);

  /// Lex-leader symmetry breaking over the lattice's reflection
  /// automorphisms (row flip, column flip — ROADMAP's CNF-level analogue of
  /// the exhaustive engine's SearchOptions::symmetry_skip). Top-bottom
  /// connectivity is invariant under both reflections for every cell
  /// assignment, so each symmetry maps solutions to solutions for any
  /// target and constraining the selector vector to be lexicographically
  /// <= each reflected image keeps at least one representative per orbit.
  /// Call once, before or between solve()s; composes with CEGAR refinement
  /// because later care-minterm clauses are themselves symmetric.
  void add_symmetry_breaking();

  /// Reads the chosen candidate index per cell (row-major) out of the
  /// solver's model after solve() returned kTrue.
  std::vector<int> decode() const;

 private:
  Solver& solver_;
  int rows_;
  int cols_;
  int num_vars_;
  int num_choices_;
  std::vector<Var> sel_base_;  ///< per-cell first selector variable
};

}  // namespace ftl::sat
