#include "ftl/sat/dpll.hpp"

#include "ftl/util/error.hpp"

namespace ftl::sat {
namespace {

LBool lit_value(const std::vector<LBool>& assign, Lit p) {
  const LBool v = assign[static_cast<std::size_t>(p.var())];
  if (v == LBool::kUndef) return LBool::kUndef;
  const bool truth = (v == LBool::kTrue) == p.positive();
  return truth ? LBool::kTrue : LBool::kFalse;
}

enum class Propagation { kOk, kConflict };

/// Saturating unit propagation over the full clause list (quadratic and
/// proud of it).
Propagation propagate(const std::vector<std::vector<Lit>>& clauses,
                      std::vector<LBool>& assign) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::vector<Lit>& clause : clauses) {
      int num_undef = 0;
      Lit last_undef{-2};
      bool satisfied = false;
      for (const Lit p : clause) {
        const LBool v = lit_value(assign, p);
        if (v == LBool::kTrue) {
          satisfied = true;
          break;
        }
        if (v == LBool::kUndef) {
          ++num_undef;
          last_undef = p;
        }
      }
      if (satisfied) continue;
      if (num_undef == 0) return Propagation::kConflict;
      if (num_undef == 1) {
        assign[static_cast<std::size_t>(last_undef.var())] =
            last_undef.positive() ? LBool::kTrue : LBool::kFalse;
        changed = true;
      }
    }
  }
  return Propagation::kOk;
}

bool search(const std::vector<std::vector<Lit>>& clauses,
            std::vector<LBool>& assign) {
  if (propagate(clauses, assign) == Propagation::kConflict) return false;
  for (std::size_t v = 0; v < assign.size(); ++v) {
    if (assign[v] != LBool::kUndef) continue;
    for (const LBool phase : {LBool::kFalse, LBool::kTrue}) {
      std::vector<LBool> branch = assign;
      branch[v] = phase;
      if (search(clauses, branch)) {
        assign = std::move(branch);
        return true;
      }
    }
    return false;
  }
  return true;  // every variable assigned, no clause falsified
}

}  // namespace

LBool dpll_solve(int num_vars, const std::vector<std::vector<Lit>>& clauses,
                 std::vector<LBool>* model) {
  FTL_EXPECTS(num_vars >= 0);
  for (const std::vector<Lit>& clause : clauses) {
    for (const Lit p : clause) {
      FTL_EXPECTS(p.defined() && p.var() < num_vars);
    }
  }
  std::vector<LBool> assign(static_cast<std::size_t>(num_vars), LBool::kUndef);
  if (!search(clauses, assign)) return LBool::kFalse;
  for (LBool& v : assign) {
    if (v == LBool::kUndef) v = LBool::kFalse;  // don't-care variables
  }
  if (model != nullptr) *model = std::move(assign);
  return LBool::kTrue;
}

}  // namespace ftl::sat
