#include "ftl/sat/proof.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <unordered_map>

#include "ftl/util/error.hpp"

namespace ftl::sat {
namespace {

/// Sorted-deduped copy of a clause; `tautology` set when it contains p and
/// ~p (such a clause is vacuously true and never constrains anything).
std::vector<Lit> canonical(const std::vector<Lit>& lits, bool* tautology) {
  std::vector<Lit> out = lits;
  std::sort(out.begin(), out.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  *tautology = false;
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i] == ~out[i + 1]) {
      *tautology = true;
      break;
    }
  }
  return out;
}

std::uint64_t clause_hash(const std::vector<Lit>& lits) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const Lit p : lits) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.code));
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryProof

void MemoryProof::on_input(const std::vector<Lit>& lits) {
  records_.push_back({ProofStep::kInput, lits});
  ++inputs_;
}

void MemoryProof::on_derive(const std::vector<Lit>& lits) {
  records_.push_back({ProofStep::kDerive, lits});
  ++derives_;
}

void MemoryProof::on_delete(const std::vector<Lit>& lits) {
  records_.push_back({ProofStep::kDelete, lits});
  ++deletes_;
}

// ---------------------------------------------------------------------------
// FileProofSink / parse_drat_file

FileProofSink::FileProofSink(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) throw Error("cannot open proof file " + path);
}

FileProofSink::~FileProofSink() {
  if (file_ != nullptr) close();
}

void FileProofSink::close() {
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
}

void FileProofSink::write_clause(const char* prefix,
                                 const std::vector<Lit>& lits) {
  FTL_EXPECTS(file_ != nullptr);
  if (prefix[0] != '\0') std::fprintf(file_, "%s", prefix);
  for (const Lit p : lits) {
    const int dimacs = (p.var() + 1) * (p.positive() ? 1 : -1);
    std::fprintf(file_, "%d ", dimacs);
  }
  std::fprintf(file_, "0\n");
}

void FileProofSink::on_input(const std::vector<Lit>& lits) {
  write_clause("c i ", lits);
}

void FileProofSink::on_derive(const std::vector<Lit>& lits) {
  write_clause("", lits);
}

void FileProofSink::on_delete(const std::vector<Lit>& lits) {
  write_clause("d ", lits);
}

std::vector<ProofRecord> parse_drat_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) throw Error("cannot read proof file " + path);
  std::vector<ProofRecord> records;
  ProofRecord current;
  bool in_clause = false;
  char token[64];
  const auto fail = [&](const std::string& why) {
    std::fclose(file);
    throw Error("malformed proof file " + path + ": " + why);
  };
  while (std::fscanf(file, "%63s", token) == 1) {
    if (!in_clause) {
      current.lits.clear();
      if (token[0] == 'c') {
        // Comment; "c i" carries an input clause, anything else is skipped.
        int second = std::fgetc(file);
        while (second == ' ' || second == '\t') second = std::fgetc(file);
        if (second == 'i') {
          current.step = ProofStep::kInput;
          in_clause = true;
          continue;
        }
        while (second != '\n' && second != EOF) second = std::fgetc(file);
        continue;
      }
      if (token[0] == 'd' && token[1] == '\0') {
        current.step = ProofStep::kDelete;
        in_clause = true;
        continue;
      }
      current.step = ProofStep::kDerive;
      in_clause = true;
    }
    // Literal token (possibly the first of a derive line just started).
    char* end = nullptr;
    const long value = std::strtol(token, &end, 10);
    if (end == token || *end != '\0') fail("bad token '" + std::string(token) + "'");
    if (value == 0) {
      records.push_back(current);
      current.lits.clear();
      in_clause = false;
      continue;
    }
    const long var = (value > 0 ? value : -value) - 1;
    if (var > (1 << 29)) fail("literal out of range");
    current.lits.push_back(Lit::of(static_cast<Var>(var), value > 0));
  }
  std::fclose(file);
  if (in_clause) {
    throw Error("malformed proof file " + path +
                ": truncated clause (no terminating 0)");
  }
  return records;
}

// ---------------------------------------------------------------------------
// DratChecker

namespace {

constexpr std::size_t kNoClause = static_cast<std::size_t>(-1);

struct CheckClause {
  std::vector<Lit> lits;  ///< canonical (sorted, deduped)
  bool tautology = false;
  bool active = false;
  bool marked = false;
  bool is_input = false;
  std::size_t input_index = 0;  ///< dense index among kInput records
};

/// The checker's own propagation engine: an arena of clauses, two-watched
/// literals for clauses of size >= 2, a unit list for size-1 clauses, and a
/// stamped assignment so per-check state resets in O(trail).
struct CheckerState {
  std::vector<CheckClause> arena;
  std::vector<std::vector<std::size_t>> watches;  ///< by lit code
  std::vector<std::size_t> units;                 ///< ids of size-1 clauses
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;

  int num_vars = 0;
  std::vector<std::uint32_t> stamp;       ///< per-var: last check touching it
  std::vector<signed char> val;           ///< per-var value under `stamp`
  std::vector<std::size_t> reason;        ///< per-var implying clause id
  std::vector<char> seen;                 ///< cone-marking scratch
  std::vector<Var> trail;
  std::uint32_t check_id = 0;

  std::size_t marked_inputs = 0;
  std::vector<std::size_t> core_inputs;

  void ensure_var(Var v) {
    if (v < num_vars) return;
    num_vars = v + 1;
    stamp.resize(static_cast<std::size_t>(num_vars), 0);
    val.resize(static_cast<std::size_t>(num_vars), 0);
    reason.resize(static_cast<std::size_t>(num_vars), kNoClause);
    seen.resize(static_cast<std::size_t>(num_vars), 0);
    watches.resize(2 * static_cast<std::size_t>(num_vars));
  }

  signed char value(Lit p) const {
    const auto v = static_cast<std::size_t>(p.var());
    if (stamp[v] != check_id) return 0;
    return p.positive() ? val[v] : static_cast<signed char>(-val[v]);
  }

  void attach(std::size_t id) {
    CheckClause& c = arena[id];
    c.active = true;
    if (c.tautology || c.lits.empty()) return;
    if (c.lits.size() == 1) {
      units.push_back(id);
      return;
    }
    watches[static_cast<std::size_t>(c.lits[0].code)].push_back(id);
    watches[static_cast<std::size_t>(c.lits[1].code)].push_back(id);
  }

  /// Marks a clause as load-bearing for the final conflict. Input clauses
  /// join the UNSAT core; derived ones will be RUP-checked when the
  /// backward sweep reaches them.
  void mark(std::size_t id) {
    CheckClause& c = arena[id];
    if (c.marked) return;
    c.marked = true;
    if (c.is_input && c.input_index != kNoClause) {
      core_inputs.push_back(c.input_index);
      ++marked_inputs;
    }
  }

  /// Marks the conflict cone: the conflicting clause plus, transitively,
  /// the reason clause of every assigned literal it rests on.
  void mark_cone(std::size_t conflict_id) {
    std::vector<Var> queue;
    const auto visit = [&](std::size_t id) {
      if (id == kNoClause) return;
      mark(id);
      for (const Lit p : arena[id].lits) {
        const auto v = static_cast<std::size_t>(p.var());
        if (stamp[v] == check_id && seen[v] == 0) {
          seen[v] = 1;
          queue.push_back(p.var());
        }
      }
    };
    visit(conflict_id);
    while (!queue.empty()) {
      const Var v = queue.back();
      queue.pop_back();
      visit(reason[static_cast<std::size_t>(v)]);
    }
    for (const Var v : trail) seen[static_cast<std::size_t>(v)] = 0;
  }

  /// Assigns `p` true with `from` as its reason. Returns kNoClause on
  /// consistency; on contradiction returns a clause standing for the
  /// conflict (the reason of the opposing assignment, or `from`).
  bool assign(Lit p, std::size_t from, std::size_t* conflict) {
    const auto v = static_cast<std::size_t>(p.var());
    const signed char want = p.positive() ? 1 : -1;
    if (stamp[v] == check_id) {
      if (val[v] == want) return true;
      // Contradiction between two forced literals.
      *conflict = from != kNoClause ? from : reason[v];
      if (*conflict == kNoClause) *conflict = reason[v];
      if (from != kNoClause) mark(from);
      if (reason[v] != kNoClause) mark(reason[v]);
      return false;
    }
    stamp[v] = check_id;
    val[v] = want;
    reason[v] = from;
    trail.push_back(p.var());
    return true;
  }

  /// RUP check of `lits` against the currently active clauses: assume every
  /// literal false (plus all active unit clauses) and unit-propagate; the
  /// check passes iff a conflict is forced, and the conflict cone is marked.
  bool rup_holds(const std::vector<Lit>& lits) {
    ++check_id;
    trail.clear();
    std::size_t conflict = kNoClause;
    // Seed with the active unit clauses (the root facts), then the negated
    // target clause.
    std::size_t u = 0;
    while (u < units.size()) {
      const std::size_t id = units[u];
      if (!arena[id].active) {
        units[u] = units.back();
        units.pop_back();
        continue;
      }
      if (!assign(arena[id].lits[0], id, &conflict)) {
        mark_cone(conflict);
        return true;
      }
      ++u;
    }
    for (const Lit p : lits) {
      if (!assign(~p, kNoClause, &conflict)) {
        mark_cone(conflict);
        return true;
      }
    }
    // Two-watched-literal propagation over the trail.
    std::size_t head = 0;
    while (head < trail.size()) {
      const Var v = trail[head++];
      const Lit p =
          Lit::of(v, val[static_cast<std::size_t>(v)] > 0);  // now true
      std::vector<std::size_t>& ws =
          watches[static_cast<std::size_t>((~p).code)];
      std::size_t i = 0;
      std::size_t j = 0;
      bool conflicted = false;
      while (i < ws.size()) {
        const std::size_t id = ws[i++];
        CheckClause& c = arena[id];
        if (!c.active) continue;  // lazily dropped from the list
        std::vector<Lit>& cl = c.lits;
        const Lit false_lit = ~p;
        if (cl[0] == false_lit) std::swap(cl[0], cl[1]);
        if (value(cl[0]) > 0) {
          ws[j++] = id;
          continue;
        }
        bool rewatched = false;
        for (std::size_t k = 2; k < cl.size(); ++k) {
          if (value(cl[k]) >= 0) {
            std::swap(cl[1], cl[k]);
            watches[static_cast<std::size_t>(cl[1].code)].push_back(id);
            rewatched = true;
            break;
          }
        }
        if (rewatched) continue;
        ws[j++] = id;
        if (value(cl[0]) < 0) {
          // Every literal false: genuine conflict.
          while (i < ws.size()) ws[j++] = ws[i++];
          mark_cone(id);
          conflicted = true;
          break;
        }
        if (!assign(cl[0], id, &conflict)) {
          while (i < ws.size()) ws[j++] = ws[i++];
          mark_cone(conflict);
          conflicted = true;
          break;
        }
      }
      ws.resize(j);
      if (conflicted) return true;
    }
    return false;
  }
};

}  // namespace

DratCheckResult DratChecker::check(const std::vector<ProofRecord>& records,
                                   const std::vector<Lit>& final_clause) {
  const auto t0 = std::chrono::steady_clock::now();
  DratCheckResult result;
  const auto finish = [&](bool valid, std::string why) {
    result.valid = valid;
    result.error = std::move(why);
    result.check_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    detail::count_proof_check(result.valid, result.check_ms);
    return result;
  };

  CheckerState st;
  bool taut = false;
  const std::vector<Lit> target = canonical(final_clause, &taut);
  for (const Lit p : target) st.ensure_var(p.var());

  // Forward replay: attach inputs and derivations in order, resolve
  // deletions against the active set, and remember which arena id each
  // record touched so the backward sweep can restore history exactly.
  std::vector<std::size_t> record_id(records.size(), kNoClause);
  std::size_t input_count = 0;
  std::size_t last_derive = kNoClause;    // record index
  std::size_t trivial_input = kNoClause;  // empty input clause, if any
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ProofRecord& rec = records[i];
    for (const Lit p : rec.lits) {
      if (!p.defined()) return finish(false, "undefined literal in proof");
      st.ensure_var(p.var());
    }
    bool is_taut = false;
    std::vector<Lit> lits = canonical(rec.lits, &is_taut);
    if (rec.step == ProofStep::kDelete) {
      const std::uint64_t h = clause_hash(lits);
      auto it = st.by_hash.find(h);
      std::size_t found = kNoClause;
      if (it != st.by_hash.end()) {
        for (std::size_t k = 0; k < it->second.size(); ++k) {
          const std::size_t id = it->second[k];
          if (st.arena[id].active && st.arena[id].lits == lits) {
            found = id;
            it->second[k] = it->second.back();
            it->second.pop_back();
            break;
          }
        }
      }
      if (found == kNoClause) {
        return finish(false, "deletion references a clause that is not in "
                             "the active set");
      }
      st.arena[found].active = false;
      record_id[i] = found;
      continue;
    }
    CheckClause clause;
    clause.lits = std::move(lits);
    clause.tautology = is_taut;
    clause.is_input = rec.step == ProofStep::kInput;
    clause.input_index = clause.is_input ? input_count++ : kNoClause;
    const std::size_t id = st.arena.size();
    st.arena.push_back(std::move(clause));
    st.attach(id);
    st.by_hash[clause_hash(st.arena[id].lits)].push_back(id);
    record_id[i] = id;
    if (rec.step == ProofStep::kDerive) last_derive = i;
    if (st.arena[id].is_input && st.arena[id].lits.empty()) trivial_input = id;
  }

  // An empty input clause makes the formula vacuously unsatisfiable; the
  // proof is its own core.
  if (trivial_input != kNoClause) {
    st.mark(trivial_input);
    result.core_inputs = st.core_inputs;
    return finish(true, "");
  }

  if (last_derive == kNoClause) {
    return finish(false, "proof derives nothing");
  }
  if (st.arena[record_id[last_derive]].lits != target) {
    return finish(false,
                  "final derived clause differs from the certified claim");
  }

  // Backward sweep with lazy marking: the final clause is marked by
  // definition; each marked derivation is detached and RUP-checked against
  // the clauses that preceded it (deletions are re-attached as the sweep
  // passes them, restoring the historical active set).
  st.mark(record_id[last_derive]);
  for (std::size_t i = records.size(); i-- > 0;) {
    const ProofRecord& rec = records[i];
    const std::size_t id = record_id[i];
    if (rec.step == ProofStep::kDelete) {
      st.attach(id);
      continue;
    }
    if (rec.step == ProofStep::kInput) continue;  // axioms stay attached
    st.arena[id].active = false;
    if (!st.arena[id].marked) {
      ++result.skipped;
      continue;
    }
    if (st.arena[id].tautology) {
      ++result.checked;
      continue;
    }
    if (!st.rup_holds(st.arena[id].lits)) {
      return finish(false, "derived clause is not a reverse-unit-propagation "
                           "consequence of the clauses before it");
    }
    ++result.checked;
  }
  std::sort(st.core_inputs.begin(), st.core_inputs.end());
  result.core_inputs = std::move(st.core_inputs);
  return finish(true, "");
}

DratCheckResult check_solver_proof(const Solver& solver) {
  const MemoryProof* log = solver.proof_log();
  if (log == nullptr) {
    DratCheckResult result;
    result.error = "solver has no proof log (SolverOptions::certify is off)";
    return result;
  }
  return DratChecker().check(*log, solver.failed_assumptions());
}

}  // namespace ftl::sat
