#pragma once
// Embedded conflict-driven clause-learning (CDCL) SAT solver.
//
// The lattice-realization search of arXiv:2202.09551 and the crossbar
// verification of arXiv:2301.08611 are both SAT-shaped; this solver is the
// engine behind lattice::synth_sat and the check::equivalence SAT backend.
// It is a self-contained MiniSat-style core: two-watched-literal unit
// propagation, VSIDS-style variable activity with phase saving, first-UIP
// conflict analysis with clause learning, activity-sorted learnt-clause
// reduction, Luby restarts, and incremental solving (clauses may be added
// between solve() calls, and solve() accepts assumption literals).
//
// Determinism contract: identical inputs (variable/clause creation order,
// options, assumption order) produce identical search traces, models, and
// statistics. All tie-breaks resolve on variable index; the only "random"
// ingredient is a deterministic seed-derived jitter on initial activities,
// and the seed is reported back in SolveStats for reproducibility in logs.

#include <cstdint>
#include <memory>
#include <vector>

namespace ftl::sat {

/// 0-based propositional variable index.
using Var = std::int32_t;

/// A literal, packed as 2*var + (negative ? 1 : 0). The default-constructed
/// literal is undefined and must not reach the solver.
struct Lit {
  std::int32_t code = -2;

  static Lit of(Var v, bool positive = true) {
    return Lit{2 * v + (positive ? 0 : 1)};
  }
  Var var() const { return code >> 1; }
  bool positive() const { return (code & 1) == 0; }
  bool defined() const { return code >= 0; }
  Lit operator~() const { return Lit{code ^ 1}; }

  friend bool operator==(const Lit&, const Lit&) = default;
};

/// Three-valued truth value, for partial assignments and solve() results.
enum class LBool : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

struct SolverOptions {
  /// Deterministic jitter on initial variable activities; echoed in
  /// SolveStats so a logged result names the ordering that produced it.
  std::uint64_t seed = 1;
  double var_decay = 0.95;      ///< VSIDS activity decay per conflict
  double clause_decay = 0.999;  ///< learnt-clause activity decay per conflict
  int restart_base = 128;       ///< conflicts per Luby restart unit
  /// Conflict budget per solve() call; kUndef is returned when it runs out
  /// (the solver stays usable and the budget can be raised). -1 = unlimited.
  std::int64_t max_conflicts = -1;
  /// Minimize learnt clauses by recursive self-subsumption before they are
  /// recorded: a literal whose reason clause resolves away entirely within
  /// the learnt clause's level set is implied by the rest of the clause and
  /// is dropped. Shorter learnt clauses propagate more and cost less to
  /// walk; disable only for differential testing against the raw first-UIP
  /// clauses (verdicts are identical either way).
  bool minimize_learnts = true;
  /// Log a DRAT proof (inputs, learnt clauses, deletions) into an in-memory
  /// sink and run the embedded DratChecker on every kFalse verdict, making
  /// each UNSAT answer machine-checked instead of trusted. The verdict is
  /// available via last_proof_check(). Logging costs one clause copy per
  /// learnt clause; checking is backward RUP over the marked cone.
  bool certify = false;
};

/// Cumulative per-solver statistics (monotonic across solve() calls).
struct SolveStats {
  std::uint64_t solves = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;  ///< literals dequeued by unit propagation
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t deleted_clauses = 0;  ///< learnt clauses dropped by reduce
  /// Literals removed from learnt clauses by self-subsumption minimization
  /// (SolverOptions::minimize_learnts).
  std::uint64_t minimized_literals = 0;
  std::uint64_t seed = 1;             ///< decision seed (from SolverOptions)
};

/// Per-solver proof-logging statistics (monotonic; all zero unless a proof
/// sink is attached or SolverOptions::certify is set).
struct ProofStats {
  std::uint64_t inputs = 0;    ///< input clauses recorded
  std::uint64_t derived = 0;   ///< learnt/final clauses recorded
  std::uint64_t deleted = 0;   ///< deletions recorded
  std::uint64_t checks = 0;    ///< auto-checks run on kFalse verdicts
  std::uint64_t failures = 0;  ///< auto-checks that rejected the proof
};

class ProofSink;
class MemoryProof;
struct DratCheckResult;

class Solver {
 public:
  explicit Solver(SolverOptions options = {});
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Creates a fresh unassigned variable and returns its index.
  Var new_var();
  int num_vars() const;

  /// A literal that is constant-true in every model (a lazily created
  /// variable pinned by a unit clause). Encoders use it for constant cells.
  Lit true_lit();

  /// Adds a clause over existing variables. Tautologies are dropped,
  /// duplicate literals merged, and literals already false at level 0
  /// removed. Returns false when the formula has become unsatisfiable at
  /// level 0 (okay() turns false and stays false). Must be called between
  /// solve() calls, never from inside one.
  bool add_clause(std::vector<Lit> lits);

  /// False once the clause set is known unsatisfiable at level 0.
  bool okay() const;

  /// Decides satisfiability under the (possibly empty) assumption literals.
  /// kTrue: a model is available via model_value(). kFalse: unsatisfiable
  /// under the assumptions (permanently so when okay() is now false).
  /// kUndef: the max_conflicts budget ran out; callers may add clauses,
  /// raise the budget, and call solve() again.
  LBool solve(const std::vector<Lit>& assumptions = {});

  /// Value of a variable / literal in the most recent satisfying model.
  LBool model_value(Var v) const;
  LBool model_value(Lit p) const;

  /// After solve() returned kFalse under assumptions: the subset of the
  /// assumptions (negated) proven jointly unsatisfiable with the clauses.
  const std::vector<Lit>& failed_assumptions() const;

  /// Replaces the per-solve conflict budget (see SolverOptions).
  void set_max_conflicts(std::int64_t budget);

  /// Mirrors proof events (inputs/derivations/deletions) into an external
  /// sink — e.g. a FileProofSink streaming DRAT text — in addition to the
  /// in-memory log certify maintains. Must be attached before the first
  /// add_clause; pass nullptr to detach. Not owned.
  void set_proof_sink(ProofSink* sink);

  /// The in-memory proof log, or nullptr when SolverOptions::certify is off.
  const MemoryProof* proof_log() const;

  /// Verdict of the automatic proof check run on the most recent kFalse
  /// result (certify only; nullptr before the first UNSAT). The result
  /// carries the checker verdict, timing, and the input-clause UNSAT core.
  const DratCheckResult* last_proof_check() const;

  const ProofStats& proof_stats() const;

  const SolveStats& stats() const;
  const SolverOptions& options() const;
  std::size_t num_clauses() const;  ///< problem clauses currently attached
  std::size_t num_learnts() const;  ///< learnt clauses currently attached

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide solver counters (relaxed atomics, monotonic), surfaced by
/// the serve `stats` op as `sat_core` so production SAT load is observable.
/// Flushed once per solve() call, not per propagation, so the hot loop pays
/// no atomic traffic.
struct SatCounters {
  std::uint64_t solves = 0;
  std::uint64_t sat = 0;      ///< solve() calls returning kTrue
  std::uint64_t unsat = 0;    ///< solve() calls returning kFalse
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t minimized_literals = 0;  ///< dropped by clause minimization
  std::uint64_t cegar_rounds = 0;  ///< refinement rounds (lattice::synth_sat)
  std::uint64_t proof_clauses = 0;   ///< derived clauses logged to proofs
  std::uint64_t proof_checks = 0;    ///< DratChecker runs
  std::uint64_t proof_failures = 0;  ///< DratChecker rejections
  std::uint64_t proof_check_us = 0;  ///< cumulative checker wall-clock (µs)
};

/// Snapshot of the process-wide counters.
SatCounters sat_counters();

/// Resets all counters to zero (test support).
void reset_sat_counters();

namespace detail {
/// Accounting hook for CEGAR drivers (relaxed atomic increment).
void count_cegar_round();
/// Accounting hook for DratChecker runs (relaxed atomic increments).
void count_proof_check(bool valid, double check_ms);
}  // namespace detail

}  // namespace ftl::sat
