#include "ftl/sat/encode.hpp"

#include "ftl/util/error.hpp"

namespace ftl::sat {
namespace {

/// 4-neighborhood of cell (r, c) in a rows×cols grid, row-major indices.
/// Deterministic visit order (up, down, left, right) keeps clause literal
/// order — and therefore the whole search — reproducible.
template <typename Fn>
void for_each_neighbor4(int rows, int cols, int r, int c, Fn&& fn) {
  if (r > 0) fn((r - 1) * cols + c);
  if (r + 1 < rows) fn((r + 1) * cols + c);
  if (c > 0) fn(r * cols + (c - 1));
  if (c + 1 < cols) fn(r * cols + (c + 1));
}

/// 8-neighborhood (king moves), for the dual OFF-crossing encoding.
template <typename Fn>
void for_each_neighbor8(int rows, int cols, int r, int c, Fn&& fn) {
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      const int nr = r + dr;
      const int nc = c + dc;
      if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
      fn(nr * cols + nc);
    }
  }
}

std::vector<Var> new_layer(Solver& solver, int cells) {
  std::vector<Var> layer;
  layer.reserve(static_cast<std::size_t>(cells));
  for (int i = 0; i < cells; ++i) layer.push_back(solver.new_var());
  return layer;
}

}  // namespace

// Both encodings are single-layer forced-closure ("least fixpoint")
// encodings: clauses only force the reachability flags UP, so every model's
// flag set is a superset of the true reachable set, and pinning the far
// boundary false is unsatisfiable exactly when the true reachable set
// touches it. No time unrolling is needed — cyclic support only ever adds
// spurious flags, and spurious flags only make the boundary pins harder,
// never easier. What links the two encodings is the grid crossing duality:
// the ON cells 4-connect top to bottom iff the OFF cells do NOT 8-connect
// left to right, so "path exists" is encoded as the forced refutation of
// the dual OFF crossing. The tests brute-force every ON/OFF pattern of the
// small shapes against BFS to pin both encodings (and the duality) down.

void encode_path_exists(Solver& solver, int rows, int cols,
                        const std::vector<Lit>& on) {
  FTL_EXPECTS(rows >= 1 && cols >= 1);
  FTL_EXPECTS(on.size() == static_cast<std::size_t>(rows) * cols);

  // C[i]: cell i is OFF and 8-reachable from the left column through OFF
  // cells. Forced closure; demanding no right-column cell is force-reached
  // asserts there is no OFF crossing — i.e. an ON top-bottom path exists.
  const std::vector<Var> c_reach = new_layer(solver, rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int i = r * cols + c;
      const Lit ci = Lit::of(c_reach[static_cast<std::size_t>(i)]);
      if (c == 0) {
        // Seed: an OFF left-column cell is force-reached.
        solver.add_clause({on[static_cast<std::size_t>(i)], ci});
      }
      for_each_neighbor8(rows, cols, r, c, [&](int j) {
        // Spread: OFF cell next to a reached cell is force-reached.
        solver.add_clause(
            {on[static_cast<std::size_t>(i)],
             ~Lit::of(c_reach[static_cast<std::size_t>(j)]), ci});
      });
      if (c == cols - 1) {
        solver.add_clause({~ci});
      }
    }
  }
}

void encode_path_absent(Solver& solver, int rows, int cols,
                        const std::vector<Lit>& on) {
  FTL_EXPECTS(rows >= 1 && cols >= 1);
  FTL_EXPECTS(on.size() == static_cast<std::size_t>(rows) * cols);

  // R[i]: cell i is ON and 4-reachable from the top row through ON cells.
  // Forced closure; demanding no bottom-row cell is force-reached asserts
  // no ON top-bottom path exists.
  const std::vector<Var> reach = new_layer(solver, rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int i = r * cols + c;
      const Lit ri = Lit::of(reach[static_cast<std::size_t>(i)]);
      if (r == 0) {
        solver.add_clause({~on[static_cast<std::size_t>(i)], ri});
      }
      for_each_neighbor4(rows, cols, r, c, [&](int j) {
        solver.add_clause({~on[static_cast<std::size_t>(i)],
                           ~Lit::of(reach[static_cast<std::size_t>(j)]), ri});
      });
      if (r == rows - 1) {
        solver.add_clause({~ri});
      }
    }
  }
}

std::vector<Lit> encode_reach_exact(Solver& solver, int rows, int cols,
                                    const std::vector<Lit>& on,
                                    bool from_top) {
  FTL_EXPECTS(rows >= 1 && cols >= 1);
  FTL_EXPECTS(on.size() == static_cast<std::size_t>(rows) * cols);
  const int cells = rows * cols;
  const int seed_row = from_top ? 0 : rows - 1;

  // Layer 0: the seed boundary's conducting cells, everything else false.
  std::vector<Lit> reach(static_cast<std::size_t>(cells));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const auto i = static_cast<std::size_t>(r * cols + c);
      const Lit ri = Lit::of(solver.new_var());
      if (r == seed_row) {
        solver.add_clause({~ri, on[i]});
        solver.add_clause({~on[i], ri});
      } else {
        solver.add_clause({~ri});
      }
      reach[i] = ri;
    }
  }

  // BFS unrolling: R'[i] <-> on[i] & (R[i] | OR of 4-neighbor R[j]).
  // Distances are < cells, so cells-1 expansion steps reach the fixpoint.
  for (int step = 1; step < cells; ++step) {
    std::vector<Lit> next(static_cast<std::size_t>(cells));
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const auto i = static_cast<std::size_t>(r * cols + c);
        std::vector<Lit> sources{reach[i]};
        for_each_neighbor4(rows, cols, r, c, [&](int j) {
          sources.push_back(reach[static_cast<std::size_t>(j)]);
        });
        // o <-> OR(sources)
        const Lit o = Lit::of(solver.new_var());
        std::vector<Lit> any{~o};
        for (const Lit s : sources) {
          solver.add_clause({~s, o});
          any.push_back(s);
        }
        solver.add_clause(std::move(any));
        // next <-> on & o
        const Lit ri = Lit::of(solver.new_var());
        solver.add_clause({~ri, on[i]});
        solver.add_clause({~ri, o});
        solver.add_clause({~on[i], ~o, ri});
        next[i] = ri;
      }
    }
    reach = std::move(next);
  }
  return reach;
}

Lit encode_connected_exact(Solver& solver, int rows, int cols,
                           const std::vector<Lit>& on) {
  const std::vector<Lit> reach =
      encode_reach_exact(solver, rows, cols, on, /*from_top=*/true);
  if (cols == 1) return reach[static_cast<std::size_t>((rows - 1) * cols)];
  const Lit connected = Lit::of(solver.new_var());
  std::vector<Lit> any{~connected};
  for (int c = 0; c < cols; ++c) {
    const Lit b = reach[static_cast<std::size_t>((rows - 1) * cols + c)];
    solver.add_clause({~b, connected});
    any.push_back(b);
  }
  solver.add_clause(std::move(any));
  return connected;
}

LatticeSynthesisCnf::LatticeSynthesisCnf(Solver& solver, int rows, int cols,
                                         int num_vars, bool allow_constants)
    : solver_(solver),
      rows_(rows),
      cols_(cols),
      num_vars_(num_vars),
      num_choices_(2 * num_vars + (allow_constants ? 2 : 0)) {
  FTL_EXPECTS(rows >= 1 && cols >= 1);
  FTL_EXPECTS(num_vars >= 1 && num_vars <= 30);
  const int cells = rows * cols;
  sel_base_.reserve(static_cast<std::size_t>(cells));
  for (int cell = 0; cell < cells; ++cell) {
    sel_base_.push_back(solver_.num_vars());
    std::vector<Lit> at_least_one;
    for (int choice = 0; choice < num_choices_; ++choice) {
      at_least_one.push_back(Lit::of(solver_.new_var()));
    }
    for (int a = 0; a < num_choices_; ++a) {
      for (int b = a + 1; b < num_choices_; ++b) {
        solver_.add_clause({~at_least_one[static_cast<std::size_t>(a)],
                            ~at_least_one[static_cast<std::size_t>(b)]});
      }
    }
    solver_.add_clause(std::move(at_least_one));
  }
}

Lit LatticeSynthesisCnf::sel(int cell, int choice) const {
  FTL_EXPECTS(cell >= 0 && cell < rows_ * cols_);
  FTL_EXPECTS(choice >= 0 && choice < num_choices_);
  return Lit::of(sel_base_[static_cast<std::size_t>(cell)] + choice);
}

bool LatticeSynthesisCnf::choice_on(int choice, int num_vars,
                                    std::uint64_t assignment) {
  if (choice < 2 * num_vars) {
    const int var = choice / 2;
    const bool positive = (choice % 2) == 0;
    const bool bit = ((assignment >> var) & 1) != 0;
    return positive == bit;
  }
  return choice == 2 * num_vars;  // constant-1; 2*num_vars+1 is constant-0
}

void LatticeSynthesisCnf::add_care_minterm(std::uint64_t assignment,
                                           bool target_value) {
  FTL_EXPECTS(num_vars_ >= 64 || assignment < (std::uint64_t{1} << num_vars_));
  const int cells = rows_ * cols_;
  std::vector<Lit> on;
  on.reserve(static_cast<std::size_t>(cells));
  for (int cell = 0; cell < cells; ++cell) {
    const Lit on_lit = Lit::of(solver_.new_var());
    // on <-> OR of the selectors whose choice conducts under this minterm.
    // (Exactly-one selection makes the pair of directions complete.)
    std::vector<Lit> definition{~on_lit};
    for (int choice = 0; choice < num_choices_; ++choice) {
      if (!choice_on(choice, num_vars_, assignment)) continue;
      definition.push_back(sel(cell, choice));
      solver_.add_clause({~sel(cell, choice), on_lit});
    }
    solver_.add_clause(std::move(definition));
    on.push_back(on_lit);
  }
  if (target_value) {
    encode_path_exists(solver_, rows_, cols_, on);
  } else {
    encode_path_absent(solver_, rows_, cols_, on);
  }
}

void LatticeSynthesisCnf::add_symmetry_breaking() {
  // X <=lex sigma(X) for each reflection generator, where X is the selector
  // bit vector in (cell, choice) order and sigma permutes cells. The chain
  // literal a_i means "the first i+1 compared bit pairs are all equal"; it
  // must be iff-defined (one-directional definitions let a spurious
  // a_i = true impose x_{i+1} <= y_{i+1} on unequal prefixes, which can
  // remove ALL members of an orbit — unsound).
  const int cells = rows_ * cols_;
  const auto add_lex_leader = [&](auto&& image_of) {
    Lit prev{-2};  // undefined = the empty prefix, vacuously equal
    for (int cell = 0; cell < cells; ++cell) {
      if (image_of(cell) == cell) continue;  // sigma-fixed: pair is equal
      for (int choice = 0; choice < num_choices_; ++choice) {
        const Lit x = sel(cell, choice);
        const Lit y = sel(image_of(cell), choice);
        // prefix equal -> x <= y  (false < true)
        if (prev.defined()) {
          solver_.add_clause({~prev, ~x, y});
        } else {
          solver_.add_clause({~x, y});
        }
        // a <-> prev & (x <-> y)
        const Lit a = Lit::of(solver_.new_var());
        if (prev.defined()) {
          solver_.add_clause({~a, prev});
          solver_.add_clause({~a, ~x, y});
          solver_.add_clause({~a, x, ~y});
          solver_.add_clause({~prev, ~x, ~y, a});
          solver_.add_clause({~prev, x, y, a});
        } else {
          solver_.add_clause({~a, ~x, y});
          solver_.add_clause({~a, x, ~y});
          solver_.add_clause({~x, ~y, a});
          solver_.add_clause({x, y, a});
        }
        prev = a;
      }
    }
  };
  if (rows_ > 1) {
    add_lex_leader([&](int cell) {
      const int r = cell / cols_;
      const int c = cell % cols_;
      return (rows_ - 1 - r) * cols_ + c;
    });
  }
  if (cols_ > 1) {
    add_lex_leader([&](int cell) {
      const int r = cell / cols_;
      const int c = cell % cols_;
      return r * cols_ + (cols_ - 1 - c);
    });
  }
}

std::vector<int> LatticeSynthesisCnf::decode() const {
  const int cells = rows_ * cols_;
  std::vector<int> pick(static_cast<std::size_t>(cells), -1);
  for (int cell = 0; cell < cells; ++cell) {
    for (int choice = 0; choice < num_choices_; ++choice) {
      if (solver_.model_value(sel(cell, choice)) == LBool::kTrue) {
        pick[static_cast<std::size_t>(cell)] = choice;
        break;
      }
    }
    FTL_ENSURES(pick[static_cast<std::size_t>(cell)] >= 0);
  }
  return pick;
}

}  // namespace ftl::sat
