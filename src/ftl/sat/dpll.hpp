#pragma once
// Trivial DPLL reference solver: recursive unit propagation plus
// first-unassigned-variable branching, no learning, no heuristics.
//
// It exists solely to cross-check the CDCL engine on small randomized
// instances in tests — correctness oracle, not a performance tool. Keep it
// boring and obviously right.

#include <vector>

#include "ftl/sat/solver.hpp"

namespace ftl::sat {

/// Decides a CNF formula over variables [0, num_vars). Clauses use the same
/// Lit packing as Solver. Returns kTrue with `model` filled (every variable
/// assigned) or kFalse; never kUndef. Intended for tiny instances only —
/// exponential time.
LBool dpll_solve(int num_vars, const std::vector<std::vector<Lit>>& clauses,
                 std::vector<LBool>* model = nullptr);

}  // namespace ftl::sat
